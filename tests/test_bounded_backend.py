"""The bounded fast path across the backend stack.

Covers the whole vertical slice:

* id-space bounded BFS primitives on ``CompactGraph`` and the
  ghost-stitched bounded BFS on ``ShardedGraph``;
* the property-based equivalence suite -- ``bounded_match`` must produce
  identical results on the dict backend, the frozen ``CompactGraph``
  backend and the ``ShardedGraph`` backend over randomized graphs and
  bounded patterns (``*`` bounds and self-loops included);
* bounded view materialization against snapshots: id-space
  ``CompactExtension`` payloads with the distance index ``I(V)``,
  pickling through process executors;
* the BMatchJoin id-space fast path engaging on shared-snapshot
  extensions and falling back (with identical results) otherwise;
* the stale-bounded-view maintenance contract: ``ViewSet.apply_delta``
  flags bounded views stale (stamp bump -> answer-cache eviction) and
  ``QueryEngine`` rematerializes them from the refreshed snapshot --
  the regression test that fails on the old always-cached behaviour.
"""

import pickle
import random
import warnings

import pytest

from helpers import (
    build_bounded,
    build_graph,
    random_labeled_graph,
    random_pattern,
    reference_bounded_simulation,
)
from repro.core.bounded.bcontainment import bounded_contains
from repro.core.bounded.bmatchjoin import (
    _compact_bounded_match_join,
    bounded_match_join,
)
from repro.core.bounded.bminimal import bounded_minimal_views
from repro.datasets import generate_views, query_from_views, random_graph
from repro.engine import QueryEngine
from repro.graph import ANY, BoundedPattern, CompactGraph, DataGraph
from repro.shard.sharded import ShardedGraph
from repro.simulation import bounded_match
from repro.simulation.bounded import bounded_match_with_distances
from repro.simulation.compact_bounded import compact_bounded_match_with_ids
from repro.views.maintenance import Delta
from repro.views.storage import ViewSet
from repro.views.view import ViewDefinition, materialize


def random_bounded(rng, num_nodes, num_edges, max_bound=3, star_prob=0.15):
    """A random connected bounded pattern with mixed finite/* bounds."""
    base = random_pattern(rng, num_nodes, num_edges)
    qb = BoundedPattern()
    for node in base.nodes():
        qb.add_node(node, base.condition(node))
    for source, target in base.edges():
        bound = ANY if rng.random() < star_prob else rng.randint(1, max_bound)
        qb.add_edge(source, target, bound)
    return qb


# ----------------------------------------------------------------------
# Traversal primitives
# ----------------------------------------------------------------------
class TestBoundedTraversal:
    def test_compact_descendants_and_reverse_randomized(self):
        rng = random.Random(7)
        for _ in range(20):
            g = random_labeled_graph(rng, rng.randint(2, 30), rng.randint(1, 70))
            f = g.freeze()
            nodes = list(g.nodes())
            for _ in range(5):
                v = rng.choice(nodes)
                bound = rng.randint(1, 4)
                assert f.descendants_within(v, bound) == g.descendants_within(
                    v, bound
                )
                # Reverse bounded BFS against the brute-force transpose.
                targets = set(rng.sample(nodes, rng.randint(1, min(3, len(nodes)))))
                target_ids = {f.id_of(t) for t in targets}
                got = {
                    f.node_of(i)
                    for i in f.reverse_within_ids(target_ids, bound)
                }
                expected = {
                    u
                    for u in nodes
                    if any(
                        t in g.descendants_within(u, bound) for t in targets
                    )
                }
                assert got == expected

    def test_sharded_stitched_bfs_randomized(self):
        rng = random.Random(13)
        for _ in range(12):
            g = random_labeled_graph(rng, rng.randint(3, 30), rng.randint(2, 70))
            sharded = ShardedGraph(
                g,
                num_shards=rng.randint(2, 4),
                strategy=rng.choice(("hash", "label", "bfs")),
            )
            for v in rng.sample(list(g.nodes()), min(6, len(g))):
                bound = rng.randint(1, 5)
                assert sharded.descendants_within(v, bound) == (
                    g.descendants_within(v, bound)
                )


# ----------------------------------------------------------------------
# bounded_match backend equivalence
# ----------------------------------------------------------------------
class TestBoundedMatchEquivalence:
    def test_dict_vs_compact_randomized(self):
        rng = random.Random(29)
        for _ in range(40):
            g = random_labeled_graph(rng, rng.randint(2, 30), rng.randint(1, 80))
            q = random_bounded(rng, rng.randint(2, 5), rng.randint(1, 8))
            via_dict = bounded_match(q, g)
            via_compact = bounded_match(q, g.freeze())
            assert via_dict == via_compact
            reference = reference_bounded_simulation(q, g)
            if reference is None:
                assert not via_dict
            else:
                assert via_dict.node_matches == reference

    def test_dict_vs_sharded_randomized(self):
        rng = random.Random(31)
        for _ in range(15):
            g = random_labeled_graph(rng, rng.randint(3, 25), rng.randint(2, 60))
            q = random_bounded(rng, rng.randint(2, 4), rng.randint(1, 6))
            sharded = ShardedGraph(g, num_shards=rng.randint(2, 3))
            assert bounded_match(q, g) == bounded_match(q, sharded)

    def test_self_loops_and_star_bounds(self):
        rng = random.Random(37)
        for _ in range(15):
            g = random_labeled_graph(rng, rng.randint(2, 20), rng.randint(1, 50))
            for node in rng.sample(list(g.nodes()), min(2, len(g))):
                g.add_edge(node, node)
            q = random_bounded(rng, rng.randint(2, 4), rng.randint(1, 6),
                               star_prob=0.5)
            for node in rng.sample(list(q.nodes()), 1):
                q.add_edge(node, node, ANY)
            assert bounded_match(q, g) == bounded_match(q, g.freeze())

    def test_materialized_distances_agree_across_backends(self):
        rng = random.Random(41)
        for _ in range(10):
            g = random_labeled_graph(rng, rng.randint(3, 25), rng.randint(2, 60))
            q = random_bounded(rng, 2, rng.randint(1, 3), star_prob=0.2)
            definition = ViewDefinition("v", q)
            on_dict = materialize(definition, g)
            on_compact = materialize(definition, g.freeze())
            on_sharded = materialize(definition, ShardedGraph(g, num_shards=2))
            assert on_dict.edge_matches == on_compact.edge_matches
            assert on_dict.edge_matches == on_sharded.edge_matches
            assert on_dict.distances == on_compact.distances
            assert on_dict.distances == on_sharded.distances
            # Snapshot materialization carries the id-space payload.
            assert on_compact.compact is not None
            assert on_sharded.compact is not None
            if any(on_dict.edge_matches.values()):
                assert on_compact.compact.distances is not None

    def test_compact_payload_matches_node_key_form(self):
        g = build_graph(
            {1: "A", 2: "B", 3: "C", 4: "B"},
            [(1, 2), (2, 3), (1, 3), (3, 4)],
        )
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", 3)])
        f = g.freeze()
        result, id_matches, index = compact_bounded_match_with_ids(
            q, f, with_distances=True
        )
        decode = f.node_table.__getitem__
        decoded = {
            (decode(v), decode(w)): d for (v, w), d in index.items()
        }
        # Only node 1 matches "a"; 1 -> 3 -> 4 is the shortest B-path.
        assert decoded == {(1, 2): 1, (1, 4): 2}
        pairs = {
            (decode(v), decode(w))
            for v, targets in id_matches[("a", "b")].items()
            for w in targets
        }
        assert pairs == result.edge_matches[("a", "b")]


# ----------------------------------------------------------------------
# BMatchJoin: fast path vs fallback
# ----------------------------------------------------------------------
def _bounded_workload(seed, num_views=8, nodes=150, edges=400):
    labels = tuple(f"l{i}" for i in range(6))
    graph = random_graph(nodes, edges, labels=labels, seed=seed)
    definitions = list(
        generate_views(labels, num_views, seed=seed, bounded=True, max_bound=3)
    )
    dict_views = ViewSet(definitions)
    dict_views.materialize(graph)
    frozen = graph.freeze()
    compact_views = ViewSet(definitions)
    compact_views.materialize(frozen)
    return graph, frozen, dict_views, compact_views


class TestBMatchJoinFastPath:
    def test_randomized_equivalence_and_theorem9(self):
        checked = 0
        for seed in range(6):
            graph, frozen, dict_views, compact_views = _bounded_workload(seed)
            for qseed in range(3):
                query = query_from_views(
                    dict_views, 4, 6, seed=100 * seed + qseed
                )
                assert isinstance(query, BoundedPattern)
                containment = bounded_contains(query, dict_views)
                assert containment.holds
                via_dict = bounded_match_join(query, containment, dict_views)
                via_compact = bounded_match_join(
                    query, containment, compact_views
                )
                assert via_dict == via_compact
                # Theorem 9: BMatchJoin equals direct BMatch, on either
                # backend.
                direct = bounded_match(query, graph)
                assert via_dict.edge_matches == direct.edge_matches
                assert bounded_match(query, frozen) == direct
                checked += 1
        assert checked == 18

    def test_fast_path_engages_on_shared_snapshot(self):
        _, _, dict_views, compact_views = _bounded_workload(3)
        query = query_from_views(dict_views, 4, 6, seed=7)
        containment = bounded_minimal_views(query, dict_views)
        assert (
            _compact_bounded_match_join(
                query, containment, compact_views.extensions()
            )
            is not None
        )
        # Dict-backend extensions carry no payload: fast path declines.
        assert (
            _compact_bounded_match_join(
                query, containment, dict_views.extensions()
            )
            is None
        )

    def test_fast_path_declines_on_mixed_snapshots(self):
        graph, frozen, dict_views, compact_views = _bounded_workload(4)
        query = query_from_views(dict_views, 4, 6, seed=5)
        containment = bounded_contains(query, compact_views)
        names = {
            name for refs in containment.mapping.values() for name, _ in refs
        }
        assert names
        graph.add_node("poke", labels="l0")
        compact_views.materialize(graph.freeze(), names=[sorted(names)[0]])
        extensions = compact_views.extensions()
        tokens = {
            extensions[name].compact.token
            for name in names
            if extensions[name].compact is not None
        }
        if len(tokens) > 1:
            assert (
                _compact_bounded_match_join(query, containment, extensions)
                is None
            )
        result = bounded_match_join(query, containment, compact_views)
        assert result.edge_matches == bounded_match(query, graph).edge_matches

    def test_tighter_query_bounds_filter_through_distances(self):
        # View at bound 3 materializes far-apart pairs; a query edge at
        # bound 1 must drop them, identically on both paths.
        g = build_graph(
            {1: "A", 2: "B", 5: "A", 6: "X", 7: "B"},
            [(1, 2), (5, 6), (6, 7)],
        )
        view = ViewDefinition(
            "wide", build_bounded({"a": "A", "b": "B"}, [("a", "b", 3)])
        )
        for backend in (g, g.freeze()):
            views = ViewSet([view])
            views.materialize(backend)
            query = build_bounded({"a": "A", "b": "B"}, [("a", "b", 1)])
            containment = bounded_contains(query, views)
            assert containment.holds
            result = bounded_match_join(query, containment, views)
            assert result.edge_matches[("a", "b")] == {(1, 2)}
        # On the snapshot that evaluation took the id-space path.
        assert (
            _compact_bounded_match_join(query, containment, views.extensions())
            is not None
        )

    def test_naive_engine_ignores_fast_path(self):
        _, _, dict_views, compact_views = _bounded_workload(5)
        query = query_from_views(dict_views, 4, 5, seed=9)
        containment = bounded_contains(query, dict_views)
        naive = bounded_match_join(
            query, containment, compact_views, optimized=False
        )
        assert naive == bounded_match_join(query, containment, dict_views)

    def test_sharded_bounded_extensions_share_composite_token(self):
        labels = tuple(f"l{i}" for i in range(6))
        graph = random_graph(120, 320, labels=labels, seed=6)
        definitions = list(
            generate_views(labels, 8, seed=6, bounded=True, max_bound=3)
        )
        sharded = ShardedGraph(graph, num_shards=3)
        views = ViewSet(definitions)
        views.materialize(sharded)
        assert views.snapshot_token == sharded.snapshot_token
        query = query_from_views(views, 4, 6, seed=11)
        containment = bounded_contains(query, views)
        assert (
            _compact_bounded_match_join(query, containment, views.extensions())
            is not None
        )
        result = bounded_match_join(query, containment, views)
        assert result.edge_matches == bounded_match(query, graph).edge_matches

    def test_extensions_pickle_with_distance_payload(self):
        _, frozen, _, compact_views = _bounded_workload(2, num_views=5,
                                                        nodes=60, edges=150)
        revived = pickle.loads(pickle.dumps(compact_views.extensions()))
        for name, extension in compact_views.extensions().items():
            twin = revived[name]
            assert twin.edge_matches == extension.edge_matches
            assert twin.distances == extension.distances
            assert twin.compact is not None
            assert twin.compact.token == extension.compact.token
            assert twin.compact.distances == extension.compact.distances


# ----------------------------------------------------------------------
# Engine integration: snapshots, shards, process executors
# ----------------------------------------------------------------------
class TestEngineBoundedIntegration:
    @pytest.fixture
    def workload(self):
        labels = tuple(f"l{i}" for i in range(6))
        graph = random_graph(120, 320, labels=labels, seed=9)
        views = ViewSet(
            generate_views(labels, 8, seed=9, bounded=True, max_bound=3)
        )
        queries = [query_from_views(views, 4, 6, seed=s) for s in range(3)]
        return graph, views, queries

    def test_bounded_plans_evaluate_against_snapshot(self, workload):
        graph, views, queries = workload
        engine = QueryEngine(views, graph=graph)
        results = engine.answer_batch(queries)
        snapshot = engine.snapshot()
        assert isinstance(snapshot, CompactGraph)
        # On-demand materialization bound every bounded extension to the
        # engine's snapshot (one shared token).
        assert views.snapshot_token == snapshot.snapshot_token
        for result, query in zip(results, queries):
            assert result.edge_matches == bounded_match(query, graph).edge_matches

    def test_bounded_direct_plan_runs_on_snapshot(self, workload):
        graph, _, _ = workload
        empty = ViewSet()
        engine = QueryEngine(empty, graph=graph)
        query = random_bounded(random.Random(3), 3, 3)
        plan = engine.plan(query)
        assert plan.strategy == "direct"
        result = engine.execute(plan)
        assert result.edge_matches == bounded_match(query, graph).edge_matches

    def test_sharded_engine_answers_bounded(self, workload):
        graph, views, queries = workload
        engine = QueryEngine(views, graph=graph, shards=2)
        for query in queries:
            result = engine.answer(query)
            assert result.edge_matches == bounded_match(query, graph).edge_matches

    def test_process_executor_round_trips_distance_payloads(self, workload):
        graph, views, queries = workload
        engine = QueryEngine(views, graph=graph)
        serial = engine.answer_batch(queries)
        fresh = QueryEngine(views, graph=graph)
        parallel = fresh.answer_batch(queries, executor="process", workers=2)
        for a, b in zip(serial, parallel):
            assert a.edge_matches == b.edge_matches


# ----------------------------------------------------------------------
# Stale bounded views: the maintenance regression
# ----------------------------------------------------------------------
def _staleness_fixture():
    """Graph + bounded view where an insertion changes the bounded answer."""
    g = build_graph(
        {1: "A", 2: "B", 4: "B", 5: "X", 6: "X"},
        [(1, 2), (1, 5), (5, 6), (6, 4)],
    )
    pattern = build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
    view = ViewDefinition("bview", pattern)
    query = build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
    return g, view, query


class TestStaleBoundedViews:
    def test_apply_delta_flags_and_stamps_stale_bounded(self):
        g, view, query = _staleness_fixture()
        views = ViewSet([view])
        views.materialize(g.freeze())
        with pytest.warns(UserWarning, match="bview"):
            tracker = views.track(g)
        assert tracker.skipped_bounded == ("bview",)
        before = views.view_version("bview")
        report = views.apply_delta(Delta().insert(5, 4))
        assert report.applied == 1
        assert report.stale_bounded == ("bview",)
        assert views.is_stale("bview")
        assert views.stale_views() == ("bview",)
        assert views.view_version("bview") > before
        # A no-op batch (edge already present) leaves stamps alone.
        before = views.view_version("bview")
        report = views.apply_delta(Delta().insert(5, 4))
        assert report.applied == 0
        assert report.stale_bounded == ()
        assert views.view_version("bview") == before
        # Rematerializing clears the flag.
        views.materialize(tracker.graph.freeze(), names=["bview"])
        assert not views.is_stale("bview")

    def test_engine_reflects_update_instead_of_cached_answer(self):
        # THE regression: pre-PR, apply_delta left the bounded view's
        # version stamp untouched, so the engine's answer cache kept
        # serving the stale answer after the update.
        g, view, query = _staleness_fixture()
        views = ViewSet([view])
        engine = QueryEngine(views, graph=g)
        first = engine.answer(query)
        assert first.edge_matches[("a", "b")] == {(1, 2)}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            tracker = views.track(g)
        engine.attach_maintenance(tracker)
        # 5 -> 4 puts node 4 within bound 2 of node 1: the bounded
        # answer must gain the pair (1, 4).
        report = views.apply_delta(Delta().insert(5, 4))
        assert report.applied == 1
        second = engine.answer(query)
        expected = bounded_match(query, tracker.graph)
        assert second.edge_matches == expected.edge_matches
        assert second.edge_matches[("a", "b")] == {(1, 2), (1, 4)}
        # And the refreshed extension is bound to the refreshed snapshot.
        assert views.extension("bview").compact is not None
        assert (
            views.extension("bview").compact.token
            == engine.snapshot().snapshot_token
        )
        assert not views.is_stale("bview")

    def test_direct_tracker_drive_flags_stale_via_import_maintenance(self):
        # import_maintenance is the single choke point: driving the
        # tracker handle directly (no apply_delta) must still strand
        # bounded views once the updates are pulled in.
        g, view, query = _staleness_fixture()
        views = ViewSet([view])
        views.materialize(g.freeze())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            tracker = views.track(g)
        before = views.view_version("bview")
        tracker.insert_edge(5, 4)
        views.import_maintenance()
        assert views.is_stale("bview")
        assert views.view_version("bview") > before
        # A sync with no new updates does not re-stamp.
        before = views.view_version("bview")
        views.import_maintenance()
        assert views.view_version("bview") == before

    def test_attach_without_updates_keeps_bounded_answers_live(self):
        # Attaching a quiet tracker is not a data change: no staleness,
        # no stamp bump, cached bounded answers keep hitting.
        g, view, query = _staleness_fixture()
        views = ViewSet([view])
        engine = QueryEngine(views, graph=g)
        engine.answer(query)
        before = views.view_version("bview")
        from repro.views.maintenance import IncrementalViewSet

        engine.attach_maintenance(IncrementalViewSet([], g))
        assert not views.is_stale("bview")
        assert views.view_version("bview") == before
        assert engine.answer(query).stats.cache_hit

    def test_direct_tracker_updates_also_strand_bounded_answers(self):
        g, view, query = _staleness_fixture()
        views = ViewSet([view])
        engine = QueryEngine(views, graph=g)
        first = engine.answer(query)
        assert first.edge_matches[("a", "b")] == {(1, 2)}
        from repro.views.maintenance import IncrementalViewSet

        tracker = IncrementalViewSet([], g)
        engine.attach_maintenance(tracker)
        tracker.insert_edge(5, 4)
        second = engine.answer(query)
        assert second.edge_matches[("a", "b")] == {(1, 2), (1, 4)}
        assert not second.stats.cache_hit

    def test_unchanged_simulation_views_stay_live_while_bounded_go_stale(self):
        g, view, query = _staleness_fixture()
        from helpers import build_pattern

        plain = ViewDefinition(
            "plain", build_pattern({"x": "X", "y": "X"}, [("x", "y")])
        )
        views = ViewSet([view, plain])
        views.materialize(g.freeze())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            views.track(g)
        plain_before = views.view_version("plain")
        report = views.apply_delta(Delta().insert(5, 4))
        assert report.stale_bounded == ("bview",)
        # The insertion is irrelevant to the simulation view: its stamp
        # holds, so answers over it keep hitting.
        assert views.view_version("plain") == plain_before
        assert not views.is_stale("plain")
