"""Tests for partial answering and the hybrid evaluator."""

import random

import pytest

from repro.core.rewriting import hybrid_answer, partial_answer
from repro.graph import ANY, BoundedPattern
from repro.simulation import bounded_match, match
from repro.views import ViewDefinition, ViewSet

from helpers import (
    build_bounded,
    build_graph,
    build_pattern,
    random_labeled_graph,
    random_pattern,
)


def setup_partial():
    """Query with 3 edges; views cover only (a,b) and (b,c)."""
    g = build_graph(
        {1: "A", 2: "B", 3: "C", 4: "D", 5: "B"},
        [(1, 2), (2, 3), (3, 4), (1, 5)],
    )
    q = build_pattern(
        {"a": "A", "b": "B", "c": "C", "d": "D"},
        [("a", "b"), ("b", "c"), ("c", "d")],
    )
    views = ViewSet(
        [
            ViewDefinition("Vab", q.subpattern([("a", "b")])),
            ViewDefinition("Vbc", q.subpattern([("b", "c")])),
        ]
    )
    views.materialize(g)
    return g, q, views


class TestPartialAnswer:
    def test_coverage_reporting(self):
        g, q, views = setup_partial()
        partial = partial_answer(q, views)
        assert partial.covered == {("a", "b"), ("b", "c")}
        assert partial.uncovered == {("c", "d")}
        assert partial.coverage == pytest.approx(2 / 3)

    def test_result_overapproximates(self):
        g, q, views = setup_partial()
        partial = partial_answer(q, views)
        full = match(q, g)
        for edge in partial.covered:
            assert full.edge_matches[edge] <= partial.result.edge_matches[edge]

    def test_no_coverage(self):
        g, q, views = setup_partial()
        empty_views = ViewSet(
            [ViewDefinition("zz", build_pattern({"x": "Z", "y": "Z"}, [("x", "y")]))]
        )
        empty_views.materialize(g)
        partial = partial_answer(q, empty_views)
        assert partial.coverage == 0
        assert not partial.result

    def test_full_coverage_equals_matchjoin(self):
        g, q, views = setup_partial()
        views.add(ViewDefinition("Vcd", q.subpattern([("c", "d")])))
        views.materialize(g, names=["Vcd"])
        partial = partial_answer(q, views)
        assert partial.coverage == 1.0
        assert partial.result.edge_matches == match(q, g).edge_matches


class TestHybridAnswer:
    def test_exact_on_partial_coverage(self):
        g, q, views = setup_partial()
        result = hybrid_answer(q, views, g)
        assert result.edge_matches == match(q, g).edge_matches

    def test_exact_with_no_views(self):
        g, q, _ = setup_partial()
        result = hybrid_answer(q, ViewSet(), g)
        assert result.edge_matches == match(q, g).edge_matches

    def test_exact_with_full_views(self):
        g, q, views = setup_partial()
        views.add(ViewDefinition("Vcd", q.subpattern([("c", "d")])))
        views.materialize(g, names=["Vcd"])
        result = hybrid_answer(q, views, g)
        assert result.edge_matches == match(q, g).edge_matches

    @pytest.mark.parametrize("seed", range(10))
    def test_random_partial_coverage(self, seed):
        rng = random.Random(seed + 77)
        g = random_labeled_graph(rng, 25, 70)
        q = random_pattern(rng, 4, 6)
        edges = q.edges()
        covered_count = rng.randint(0, len(edges))
        views = ViewSet()
        for i, edge in enumerate(rng.sample(edges, covered_count)):
            views.add(ViewDefinition(f"E{i}", q.subpattern([edge])))
        views.materialize(g)
        result = hybrid_answer(q, views, g)
        assert result.edge_matches == match(q, g).edge_matches

    def test_bounded_hybrid(self):
        g = build_graph(
            {1: "A", 2: "X", 3: "B", 4: "C"}, [(1, 2), (2, 3), (3, 4)]
        )
        q = build_bounded(
            {"a": "A", "b": "B", "c": "C"}, [("a", "b", 2), ("b", "c", 1)]
        )
        views = ViewSet(
            [
                ViewDefinition(
                    "Vab", build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
                )
            ]
        )
        views.materialize(g)
        result = hybrid_answer(q, views, g)
        assert result.edge_matches == bounded_match(q, g).edge_matches

    def test_bounded_hybrid_with_star(self):
        g = build_graph(
            {1: "A", 2: "X", 3: "X", 4: "B"}, [(1, 2), (2, 3), (3, 4)]
        )
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", ANY)])
        result = hybrid_answer(q, ViewSet(), g)
        assert result.edge_matches == bounded_match(q, g).edge_matches
