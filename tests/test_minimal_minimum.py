"""Tests for minimal and minimum containment (Examples 6 and 7)."""

import random

import pytest

from repro.core.containment import contains
from repro.core.minimal import minimal_views
from repro.core.minimum import minimum_views, minimum_views_exact
from repro.views import ViewDefinition

from helpers import build_pattern
from test_containment import fig4_query, fig4_views


class TestMinimalFig4:
    def test_example_6(self):
        """minimal sees V1..V4 cover Qs, then drops the redundant V1."""
        result = minimal_views(fig4_query(), fig4_views())
        assert result.holds
        assert set(result.views_used()) == {"V2", "V3", "V4"}

    def test_minimality_property(self):
        result = minimal_views(fig4_query(), fig4_views())
        chosen = [v for v in fig4_views() if v.name in result.views_used()]
        # Dropping any one chosen view must break containment.
        for leave_out in result.views_used():
            remaining = [v for v in chosen if v.name != leave_out]
            assert not contains(fig4_query(), remaining).holds

    def test_mapping_restricted_to_selection(self):
        result = minimal_views(fig4_query(), fig4_views())
        names = set(result.views_used())
        for refs in result.mapping.values():
            assert {name for name, _ in refs} <= names

    def test_not_contained_returns_partial(self):
        views = [v for v in fig4_views() if v.name in ("V1", "V3")]
        result = minimal_views(fig4_query(), views)
        assert not result.holds
        assert ("B", "E") in result.uncovered


class TestMinimumFig4:
    def test_example_7(self):
        """Greedy picks V6 (covers 3 edges) then V5; {V5, V6} contains Qs."""
        result = minimum_views(fig4_query(), fig4_views())
        assert result.holds
        assert set(result.views_used()) == {"V5", "V6"}

    def test_minimum_no_bigger_than_minimal_here(self):
        q = fig4_query()
        assert len(minimum_views(q, fig4_views()).views_used()) <= len(
            minimal_views(q, fig4_views()).views_used()
        )

    def test_exact_optimum_is_two(self):
        result = minimum_views_exact(fig4_query(), fig4_views())
        assert result is not None
        assert len(result.views_used()) == 2

    def test_not_contained(self):
        views = [v for v in fig4_views() if v.name == "V1"]
        assert not minimum_views(fig4_query(), views).holds
        assert minimum_views_exact(fig4_query(), views) is None


class TestGreedyGuarantee:
    @pytest.mark.parametrize("seed", range(10))
    def test_log_approximation_bound(self, seed):
        """card(greedy) <= ceil(log2(|Ep|)+1) * card(OPT) on random instances."""
        import math

        rng = random.Random(seed)
        labels = "ABCDEF"
        q = build_pattern(
            {i: rng.choice(labels) for i in range(5)},
            [(i, (i + 1) % 5) for i in range(5)] + [(0, 2), (1, 3)],
        )
        views = []
        edges = q.edges()
        for i in range(8):
            chosen = rng.sample(edges, rng.randint(1, len(edges)))
            try:
                sub = q.subpattern(chosen)
                views.append(ViewDefinition(f"W{i}", sub))
            except KeyError:  # pragma: no cover
                continue
        full = contains(q, views)
        if not full.holds:
            pytest.skip("random views do not cover the query")
        greedy = minimum_views(q, views)
        exact = minimum_views_exact(q, views)
        assert greedy.holds and exact is not None
        bound = (math.log2(q.num_edges) + 1) * len(exact.views_used())
        assert len(greedy.views_used()) <= bound


class TestSubpatternViewsAlwaysContain:
    def test_edge_partition_covers(self):
        q = fig4_query()
        edges = q.edges()
        views = [
            ViewDefinition(f"E{i}", q.subpattern([edge]))
            for i, edge in enumerate(edges)
        ]
        result = contains(q, views)
        assert result.holds
        minimal = minimal_views(q, views)
        # Single-edge views of distinct label pairs are all needed.
        assert minimal.holds
        assert len(minimal.views_used()) == len(edges)
