"""Unit tests for node search conditions and the implication engine."""

import pytest

from repro.graph.conditions import (
    AttributeCondition,
    Atom,
    Label,
    P,
    TrueCondition,
    as_condition,
    implies,
)


class TestLabel:
    def test_matches_membership(self):
        cond = Label("DBA")
        assert cond.matches(frozenset({"DBA", "PM"}), {})
        assert not cond.matches(frozenset({"PM"}), {})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Label("")

    def test_equality_and_hash(self):
        assert Label("A") == Label("A")
        assert Label("A") != Label("B")
        assert len({Label("A"), Label("A"), Label("B")}) == 2


class TestTrueCondition:
    def test_always_matches(self):
        cond = TrueCondition()
        assert cond.matches(frozenset(), {})
        assert cond.matches(frozenset({"X"}), {"a": 1})


class TestAtoms:
    def test_all_operators(self):
        attrs = {"v": 10}
        assert Atom("v", "==", 10).holds(attrs)
        assert Atom("v", "!=", 9).holds(attrs)
        assert Atom("v", "<=", 10).holds(attrs)
        assert Atom("v", ">=", 10).holds(attrs)
        assert Atom("v", "<", 11).holds(attrs)
        assert Atom("v", ">", 9).holds(attrs)

    def test_missing_attribute_fails(self):
        assert not Atom("v", "==", 1).holds({})

    def test_type_error_fails_closed(self):
        assert not Atom("v", "<", 5).holds({"v": "string"})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Atom("v", "~", 1)


class TestPredicateBuilder:
    def test_builder_produces_condition(self):
        cond = P("rate") >= 4
        assert isinstance(cond, AttributeCondition)
        assert cond.matches(frozenset(), {"rate": 5})
        assert not cond.matches(frozenset(), {"rate": 3})

    def test_conjunction(self):
        cond = (P("category") == "Music") & (P("visits") >= 10_000)
        assert cond.matches(frozenset(), {"category": "Music", "visits": 20_000})
        assert not cond.matches(frozenset(), {"category": "Music", "visits": 5})

    def test_with_label(self):
        cond = ((P("rate") >= 4) & (P("age") <= 100)).with_label("video")
        assert cond.matches(frozenset({"video"}), {"rate": 5, "age": 50})
        assert not cond.matches(frozenset({"user"}), {"rate": 5, "age": 50})

    def test_conflicting_labels_rejected(self):
        a = (P("x") == 1).with_label("u")
        b = (P("y") == 2).with_label("w")
        with pytest.raises(ValueError):
            a & b


class TestImplication:
    def test_label_implication_is_equality(self):
        assert implies(Label("A"), Label("A"))
        assert not implies(Label("A"), Label("B"))

    def test_everything_implies_true(self):
        assert implies(Label("A"), TrueCondition())
        assert implies(P("x") >= 1, TrueCondition())

    def test_true_implies_nothing_else(self):
        assert not implies(TrueCondition(), Label("A"))

    def test_equality_atom_implications(self):
        assert implies(P("v") == 10, P("v") >= 5)
        assert implies(P("v") == 10, P("v") <= 10)
        assert implies(P("v") == 10, P("v") != 3)
        assert not implies(P("v") == 10, P("v") > 10)
        assert implies(P("v") == 10, P("v") == 10)

    def test_interval_implications(self):
        assert implies(P("v") >= 10, P("v") >= 5)
        assert not implies(P("v") >= 5, P("v") >= 10)
        assert implies(P("v") <= 5, P("v") <= 10)
        assert implies(P("v") > 10, P("v") >= 10)
        assert implies(P("v") < 5, P("v") <= 5)
        assert implies(P("v") > 10, P("v") != 10)
        assert implies(P("v") < 10, P("v") != 10)

    def test_cross_attribute_never_implies(self):
        assert not implies(P("x") >= 10, P("y") >= 1)

    def test_conjunction_implication(self):
        sub = (P("c") == "Music") & (P("v") >= 20_000)
        sup = P("v") >= 10_000
        assert implies(sub, sup)
        assert not implies(sup, sub)

    def test_label_vs_attribute_condition(self):
        labeled = (P("x") >= 1).with_label("video")
        assert implies(labeled, Label("video"))
        assert not implies(Label("video"), labeled)

    def test_label_implies_bare_labeled_condition(self):
        bare = AttributeCondition((), label="video")
        assert implies(Label("video"), bare)

    def test_incomparable_types_fail_closed(self):
        assert not implies(P("v") >= "abc", P("v") >= 5)


class TestCoercion:
    def test_string_to_label(self):
        assert as_condition("A") == Label("A")

    def test_condition_passthrough(self):
        cond = P("x") == 1
        assert as_condition(cond) is cond

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_condition(42)
