"""Tests for the cost-based adaptive planner (ROADMAP item 3).

Pins the plan-reason vocabulary (old strings stay as aliases), the
:class:`~repro.engine.cost.CostModel` calibration mechanics (cold-start
ordering, first-sample replacement, EWMA, cross-strategy anchoring),
the label-selective direct-cost pricing, the per-edge λ pruning of
hybrid plans, and -- as a hypothesis property -- that the adaptive
planner's answers always equal forced-direct evaluation across the
dict, compact and sharded backends.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import CostModel, QueryEngine
from repro.engine.cost import (
    BOUNDED_COLD_FACTOR,
    COLD_RATES,
    EWMA_ALPHA,
)
from repro.engine.plan import (
    DIRECT,
    FALLBACK_REASONS,
    HYBRID,
    MATCHJOIN,
    REASON_ALIASES,
    REASON_COST_DIRECT,
    REASON_COST_HYBRID,
    REASON_COST_MATCHJOIN,
    REASON_ISOLATED_NODES,
    REASON_NOT_CONTAINED,
)
from repro.views import ViewDefinition, ViewSet

from helpers import (
    build_graph,
    build_pattern,
    random_labeled_graph,
    random_pattern,
)

seeds = st.integers(min_value=0, max_value=10_000)


# ----------------------------------------------------------------------
# Reason vocabulary: the legacy strings must keep meaning what they
# meant (existing PlanChoiceRecord consumers match on them).
# ----------------------------------------------------------------------
class TestReasons:
    def test_legacy_reasons_alias_to_cost_reasons(self):
        assert REASON_ALIASES == {
            "not-contained": "cost-direct",
            "isolated-nodes": "cost-direct",
        }

    def test_reason_strings_pinned(self):
        assert REASON_NOT_CONTAINED == "not-contained"
        assert REASON_ISOLATED_NODES == "isolated-nodes"
        assert REASON_COST_DIRECT == "cost-direct"
        assert REASON_COST_MATCHJOIN == "cost-matchjoin"
        assert REASON_COST_HYBRID == "cost-hybrid"
        assert FALLBACK_REASONS == (
            REASON_NOT_CONTAINED,
            REASON_ISOLATED_NODES,
        )

    def test_fixed_planner_keeps_legacy_reason_shapes(self):
        graph = build_graph({1: "A", 2: "B"}, [(1, 2)])
        views = ViewSet(
            [ViewDefinition("V", build_pattern({"a": "A", "b": "B"}, [("a", "b")]))]
        )
        engine = QueryEngine(views, graph=graph)
        plan = engine.plan(build_pattern({"u": "A", "v": "C"}, [("u", "v")]))
        assert plan.strategy == DIRECT
        assert plan.reason == REASON_NOT_CONTAINED
        assert REASON_ALIASES[plan.reason] == REASON_COST_DIRECT


# ----------------------------------------------------------------------
# CostModel calibration mechanics
# ----------------------------------------------------------------------
class TestCostModel:
    def test_cold_rates_encode_the_papers_ordering(self):
        model = CostModel()
        mj = model.rate(MATCHJOIN, False)
        hy = model.rate(HYBRID, False)
        di = model.rate(DIRECT, False)
        assert mj < hy < di
        assert model.rate(DIRECT, True) == di * BOUNDED_COLD_FACTOR

    def test_first_sample_replaces_then_ewma(self):
        model = CostModel()
        model.observe(DIRECT, False, units=1000.0, elapsed=0.01)
        first = 0.01 / 1000.0
        assert model.rate(DIRECT, False) == pytest.approx(first)
        assert model.samples(DIRECT, False) == 1
        model.observe(DIRECT, False, units=1000.0, elapsed=0.02)
        second = 0.02 / 1000.0
        expected = first + EWMA_ALPHA * (second - first)
        assert model.rate(DIRECT, False) == pytest.approx(expected)
        assert model.samples(DIRECT, False) == 2

    def test_cold_rates_anchor_to_observed_strategies(self):
        model = CostModel()
        # Observe direct running 10x slower than its cold default: the
        # still-cold matchjoin rate scales by the same machine factor,
        # so cold and calibrated strategies compare on one scale.
        model.observe(
            DIRECT, False, units=1.0, elapsed=10.0 * COLD_RATES[DIRECT]
        )
        assert model.rate(MATCHJOIN, False) == pytest.approx(
            10.0 * COLD_RATES[MATCHJOIN]
        )
        # The bounded tier calibrates independently and stays cold.
        assert model.rate(MATCHJOIN, True) == pytest.approx(
            COLD_RATES[MATCHJOIN] * BOUNDED_COLD_FACTOR
        )

    def test_zero_elapsed_is_ignored(self):
        model = CostModel()
        model.observe(DIRECT, False, units=10.0, elapsed=0.0)
        assert model.samples(DIRECT, False) == 0

    def test_snapshot_is_json_shaped(self):
        model = CostModel()
        model.observe(MATCHJOIN, False, units=10.0, elapsed=0.001)
        model.observe(DIRECT, True, units=10.0, elapsed=0.002)
        snap = model.snapshot()
        assert set(snap) == {"matchjoin", "direct+bounded"}
        assert snap["matchjoin"]["samples"] == 1
        assert snap["matchjoin"]["rate"] == pytest.approx(0.0001)


# ----------------------------------------------------------------------
# Label-selective direct pricing
# ----------------------------------------------------------------------
def _bucket_graph():
    nodes = {f"a{i}": "A" for i in range(2)}
    nodes.update({f"b{i}": "B" for i in range(20)})
    edges = [("a0", "a1")] + [
        (f"b{i}", f"b{(i + 1) % 20}") for i in range(20)
    ]
    return build_graph(nodes, edges)


def _direct_candidate(plan):
    matches = [c for c in plan.candidates if c.strategy == DIRECT]
    assert matches, f"no direct candidate in {plan.candidates}"
    return matches[0]


class TestLabelSelectivePricing:
    def test_rare_labels_price_below_common_labels(self):
        graph = _bucket_graph()
        engine = QueryEngine(ViewSet(), graph=graph, planner="adaptive")
        rare = _direct_candidate(
            engine.plan(build_pattern({"u": "A", "v": "A"}, [("u", "v")]))
        )
        common = _direct_candidate(
            engine.plan(build_pattern({"u": "B", "v": "B"}, [("u", "v")]))
        )
        assert rare.units < common.units
        assert rare.estimate < common.estimate

    def test_wildcard_charges_the_full_node_count(self):
        graph = _bucket_graph()
        engine = QueryEngine(ViewSet(), graph=graph, planner="adaptive")
        labelled = _direct_candidate(
            engine.plan(build_pattern({"u": "B", "v": "B"}, [("u", "v")]))
        )
        from repro.graph.conditions import TrueCondition

        wild = _direct_candidate(
            engine.plan(
                build_pattern(
                    {"u": TrueCondition(), "v": TrueCondition()}, [("u", "v")]
                )
            )
        )
        assert wild.units > labelled.units


# ----------------------------------------------------------------------
# Hybrid λ pruning + explain/record agreement
# ----------------------------------------------------------------------
def _overlap_setup():
    """A graph where one covered edge has two covering views and one
    uncovered edge forces partial rewriting."""
    graph = build_graph(
        {"a1": "A", "b1": "B", "c1": "C"}, [("a1", "b1"), ("b1", "c1")]
    )
    pattern = build_pattern({"x": "A", "y": "B"}, [("x", "y")])
    views = ViewSet(
        [
            ViewDefinition("V1", pattern.copy()),
            ViewDefinition("V2", pattern.copy()),
        ]
    )
    views.materialize(graph)
    query = build_pattern(
        {"u": "A", "v": "B", "w": "C"}, [("u", "v"), ("v", "w")]
    )
    return graph, views, query


class TestHybridPruning:
    def test_hybrid_candidate_keeps_one_witness_per_edge(self):
        graph, views, query = _overlap_setup()
        engine = QueryEngine(views, graph=graph, planner="adaptive")
        plan = engine.plan(query)
        hybrids = [c for c in plan.candidates if c.strategy == HYBRID]
        assert hybrids, "partially covered query must price a hybrid plan"
        # Two views cover (u, v); the pruned λ keeps exactly one.
        assert len(hybrids[0].views) == 1
        if plan.strategy == HYBRID:
            for refs in plan.containment.mapping.values():
                assert len(refs) == 1

    def test_forced_hybrid_keeps_the_full_lambda(self):
        graph, views, query = _overlap_setup()
        engine = QueryEngine(views, graph=graph, planner="hybrid")
        plan = engine.plan(query)
        assert plan.strategy == HYBRID
        assert set(plan.views_used) == {"V1", "V2"}

    def test_hybrid_answers_match_direct(self):
        graph, views, query = _overlap_setup()
        direct = QueryEngine(views, graph=graph, planner="direct")
        for planner in ("adaptive", "hybrid"):
            engine = QueryEngine(views, graph=graph, planner=planner)
            got = engine.answer(query)
            want = direct.answer(query)
            for edge in query.edges():
                assert got.matches_of(edge) == want.matches_of(edge)

    def test_explain_and_record_agree_on_the_winner(self):
        graph, views, query = _overlap_setup()
        engine = QueryEngine(views, graph=graph, planner="adaptive")
        plan = engine.plan(query)
        text = plan.explain()
        assert "planner  : adaptive" in text
        assert plan.candidates
        winner = plan.winning_candidate()
        assert winner is not None and winner.strategy == plan.strategy
        engine.execute(plan)
        record = engine.plan_log(1)[0]
        assert record.strategy == plan.strategy
        assert record.candidates == plan.candidates
        assert record.cost_estimate == plan.cost_estimate


# ----------------------------------------------------------------------
# Property: adaptive == forced direct, across backends
# ----------------------------------------------------------------------
def _random_setup(seed):
    rng = random.Random(seed)
    graph = random_labeled_graph(rng, rng.randint(5, 25), rng.randint(5, 60))
    definitions = []
    while len(definitions) < rng.randint(1, 5):
        pattern = random_pattern(rng, rng.randint(2, 4), rng.randint(1, 5))
        if pattern.edges():
            definitions.append(
                ViewDefinition(f"V{len(definitions)}", pattern)
            )
    query = random_pattern(rng, rng.randint(2, 5), rng.randint(1, 6))
    return graph, definitions, query


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_adaptive_equals_forced_direct(seed):
    """The adaptive planner may pick matchjoin, hybrid or direct per
    query -- the answers must be indistinguishable from forced direct
    evaluation on every backend: dict-space extensions (materialized
    against the mutable graph up front), compact id-space extensions
    (materialized internally against the frozen snapshot), and the
    sharded pipeline."""
    graph, definitions, query = _random_setup(seed)
    reference = QueryEngine(
        ViewSet(definitions), graph=graph, planner="direct"
    ).answer(query)

    def dict_views():
        views = ViewSet(definitions)
        views.materialize(graph)
        return views

    backends = {
        "dict": (dict_views(), {}),
        "compact": (ViewSet(definitions), {}),
        "sharded": (ViewSet(definitions), dict(shards=2)),
    }
    for name, (views, kwargs) in backends.items():
        engine = QueryEngine(
            views, graph=graph, planner="adaptive", **kwargs
        )
        result = engine.answer(query)
        for edge in query.edges():
            assert result.matches_of(edge) == reference.matches_of(edge), (
                f"{name} backend diverged on {edge}"
            )
