"""Tests for the workload-driven auto-materialization advisor.

Budget boundaries (never over budget, zero budget means nothing
materialized), eviction safety (version stamps strand cached answers
instead of corrupting them), the shared
:func:`~repro.views.selection.selection_stats` rows, engine wiring
(``auto_materialize=`` ticks as answers flow) and the ``repro advise``
CLI.
"""

import json

from repro.cli import main
from repro.engine import QueryEngine, WorkloadAdvisor
from repro.views import ViewDefinition, ViewSet
from repro.views.selection import selection_stats

from helpers import build_graph, build_pattern


def _setup(num_pairs=4, filler=200):
    """A graph whose hot A->B structure is a small fraction of ``|G|``
    (the rest is an unrelated D-chain), so the hot view's extension
    fits comfortably inside the paper's 15% byte budget."""
    nodes = {}
    edges = []
    for i in range(num_pairs):
        nodes[f"a{i}"] = "A"
        nodes[f"b{i}"] = "B"
        edges.append((f"a{i}", f"b{i}"))
        nodes[f"c{i}"] = "C"
        edges.append((f"b{i}", f"c{i}"))
    for i in range(filler):
        nodes[f"d{i}"] = "D"
        if i:
            edges.append((f"d{i - 1}", f"d{i}"))
    graph = build_graph(nodes, edges)
    views = ViewSet(
        [
            ViewDefinition(
                "small", build_pattern({"x": "A", "y": "B"}, [("x", "y")])
            ),
            ViewDefinition(
                "big",
                build_pattern(
                    {"x": "A", "y": "B", "z": "C"}, [("x", "y"), ("y", "z")]
                ),
            ),
        ]
    )
    hot = build_pattern({"u": "A", "v": "B"}, [("u", "v")])
    return graph, views, hot


class TestBudgetBoundary:
    def test_tick_never_ends_over_budget(self):
        graph, views, hot = _setup()
        engine = QueryEngine(views, graph=graph, planner="adaptive")
        advisor = WorkloadAdvisor(engine, budget_fraction=0.15)
        budget = advisor.budget_bytes()
        for _ in range(4):
            engine.answer(hot)
        for _ in range(3):
            report = advisor.tick()
            assert report.used_bytes <= budget
            assert advisor.used_bytes() <= budget

    def test_zero_budget_materializes_nothing(self):
        graph, views, hot = _setup()
        engine = QueryEngine(views, graph=graph, planner="adaptive")
        advisor = WorkloadAdvisor(engine, budget_bytes=0)
        for _ in range(3):
            engine.answer(hot)
        report = advisor.tick()
        assert report.materialized == []
        assert advisor.used_bytes() == 0
        assert not any(views.is_materialized(n) for n in views.names())

    def test_budget_overflow_evicts_down_to_measured_bytes(self):
        graph, views, hot = _setup()
        engine = QueryEngine(views, graph=graph, planner="adaptive")
        # Budget below the measured footprint of both extensions
        # together: whatever the advisor materializes, the measured
        # check must evict back under the line.
        views.materialize(graph)
        both = WorkloadAdvisor(engine).used_bytes()
        engine.evict_extensions(views.names())
        advisor = WorkloadAdvisor(engine, budget_bytes=both - 1)
        for _ in range(4):
            engine.answer(hot)
        for _ in range(2):
            report = advisor.tick()
            assert report.used_bytes <= both - 1

    def test_advise_reports_without_applying(self):
        graph, views, hot = _setup()
        engine = QueryEngine(views, graph=graph, planner="adaptive")
        advisor = WorkloadAdvisor(engine)
        for _ in range(3):
            engine.answer(hot)
        report = advisor.advise()
        assert not report.applied
        assert advisor.ticks == 0
        assert not any(views.is_materialized(n) for n in views.names())
        assert any(s.action == "materialize" for s in report.scores)


class TestEvictionSafety:
    def test_eviction_strands_cached_answers_not_results(self):
        graph, views, hot = _setup()
        engine = QueryEngine(views, graph=graph, planner="adaptive")
        advisor = WorkloadAdvisor(engine, budget_fraction=0.15)
        for _ in range(4):
            engine.answer(hot)
        advisor.tick()
        before = engine.answer(hot)
        # Evict everything (budget collapses to zero): the next answer
        # re-plans against the bumped version stamps and must match.
        WorkloadAdvisor(engine, budget_bytes=0).tick()
        assert advisor.used_bytes() == 0
        after = engine.answer(hot)
        for edge in hot.edges():
            assert before.matches_of(edge) == after.matches_of(edge)

    def test_inflight_plan_survives_eviction(self):
        graph, views, hot = _setup()
        engine = QueryEngine(views, graph=graph, planner="adaptive")
        engine.materialize_views(views.names())
        plan = engine.plan(hot)
        engine.evict_extensions(views.names())
        # Executing the stale plan re-plans/re-materializes as needed
        # rather than reading a dropped extension.
        result = engine.execute(plan)
        reference = QueryEngine(
            ViewSet(views.definitions()), graph=graph, planner="direct"
        ).answer(hot)
        for edge in hot.edges():
            assert result.matches_of(edge) == reference.matches_of(edge)


class TestSelectionStats:
    def test_rows_cover_every_view(self):
        graph, views, hot = _setup()
        engine = QueryEngine(views, graph=graph)
        engine.answer(hot)
        rows = selection_stats(views, plan_log=engine.plan_log())
        assert set(rows) == {"small", "big"}
        row = rows["small"]
        assert row["materialized"] is True  # fixed planner materialized it
        assert row["size"] > 0
        assert row["hits"] >= 1
        assert row["maintenance_cost"] == 0.0
        assert rows["big"]["hits"] == 0


class TestEngineWiring:
    def test_auto_materialize_ticks_and_stays_under_budget(self):
        graph, views, hot = _setup()
        engine = QueryEngine(
            views,
            graph=graph,
            planner="adaptive",
            auto_materialize=0.15,
            advisor_interval=2,
        )
        advisor = engine.advisor
        assert advisor is not None
        budget = advisor.budget_bytes()
        for _ in range(6):
            engine.answer(hot)
            assert advisor.used_bytes() <= budget
        assert advisor.ticks >= 1
        assert views.is_materialized("small")

    def test_advisor_requires_a_graph(self):
        _, views, _ = _setup()
        try:
            QueryEngine(views, planner="fixed", auto_materialize=0.15)
        except ValueError as err:
            assert "graph" in str(err)
        else:
            raise AssertionError("auto_materialize without a graph must fail")


class TestAdviseCli:
    def test_advise_json_smoke(self, tmp_path, capsys):
        from repro.graph.io import write_graph, write_pattern
        from repro.views.io import write_viewset

        graph, views, hot = _setup()
        graph_path = tmp_path / "g.json"
        views_path = tmp_path / "v.json"
        query_path = tmp_path / "q.json"
        write_graph(graph, graph_path)
        write_viewset(views, views_path)
        write_pattern(hot, query_path)
        code = main(
            [
                "advise",
                "--queries", str(query_path),
                "--views", str(views_path),
                "--graph", str(graph_path),
                "--repeat", "3",
                "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["budget_bytes"] > 0
        assert not payload["applied"]
        names = {s["name"] for s in payload["scores"]}
        assert names == {"small", "big"}
        assert "cost_model" in payload
