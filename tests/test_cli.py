"""Tests for the command-line interface and view-set serialization."""

import json

import pytest

from repro.cli import main
from repro.graph.io import write_pattern
from repro.graph.pattern import BoundedPattern
from repro.views.io import (
    extension_from_json,
    extension_to_json,
    read_viewset,
    write_viewset,
)
from repro.views import ViewDefinition, ViewSet
from repro.views.view import materialize

from helpers import build_bounded, build_graph, build_pattern


class TestViewSetSerialization:
    def test_definition_round_trip(self, tmp_path):
        views = ViewSet(
            [ViewDefinition("V", build_pattern({"a": "A", "b": "B"}, [("a", "b")]))]
        )
        path = tmp_path / "views.json"
        write_viewset(views, path)
        loaded = read_viewset(path)
        assert loaded.names() == ["V"]
        assert not loaded.is_materialized("V")

    def test_extension_round_trip(self, tmp_path):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        views = ViewSet(
            [ViewDefinition("V", build_pattern({"a": "A", "b": "B"}, [("a", "b")]))]
        )
        views.materialize(g)
        path = tmp_path / "views.json"
        write_viewset(views, path)
        loaded = read_viewset(path)
        assert loaded.is_materialized("V")
        assert loaded.extension("V").pairs_of(("a", "b")) == {(1, 2)}

    def test_bounded_extension_keeps_distances(self):
        g = build_graph({1: "A", 2: "X", 3: "B"}, [(1, 2), (2, 3)])
        view = ViewDefinition(
            "V", build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
        )
        ext = materialize(view, g)
        doc = extension_to_json(ext)
        json.dumps(doc)
        back = extension_from_json(doc)
        assert back.distance_of((1, 3)) == 2
        assert isinstance(back.definition.pattern, BoundedPattern)


class TestCli:
    def test_generate_and_stats(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        views_path = tmp_path / "v.json"
        rc = main([
            "generate", "--dataset", "synthetic", "--nodes", "200",
            "--edges", "500", "--out", str(graph_path),
            "--views", str(views_path),
        ])
        assert rc == 0
        assert graph_path.exists() and views_path.exists()
        rc = main(["stats", "--graph", str(graph_path), "--views", str(views_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nodes: 200" in out

    def test_stats_json_format(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        views_path = tmp_path / "v.json"
        main([
            "generate", "--dataset", "synthetic", "--nodes", "150",
            "--edges", "300", "--out", str(graph_path),
            "--views", str(views_path),
        ])
        main(["materialize", "--graph", str(graph_path), "--views", str(views_path)])
        capsys.readouterr()
        rc = main([
            "stats", "--graph", str(graph_path), "--views", str(views_path),
            "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["graph"]["nodes"] == 150
        assert sum(payload["label_histogram"].values()) >= 150
        assert payload["label_index"]["labels"] == len(payload["label_histogram"])
        assert payload["label_index"]["largest_bucket"] in payload["label_histogram"]
        assert payload["snapshot"]["nodes"] == 150
        assert payload["snapshot"]["token"] >= 1
        assert payload["views"]["cardinality"] == len(payload["views"]["materialized"])
        assert 0 < payload["views"]["extension_fraction"]

    def test_full_workflow(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        views_path = tmp_path / "v.json"
        query_path = tmp_path / "q.json"
        out_path = tmp_path / "result.json"

        main([
            "generate", "--dataset", "amazon", "--nodes", "800",
            "--edges", "2500", "--out", str(graph_path),
            "--views", str(views_path),
        ])
        rc = main(["materialize", "--graph", str(graph_path), "--views", str(views_path)])
        assert rc == 0

        # A query matching one of the cached view shapes (AV1).
        from repro.graph.conditions import P

        book4 = (P("rating") >= 4).with_label("Book")
        q = build_pattern({}, [])
        q.add_node("x", book4)
        q.add_node("y", book4)
        q.add_edge("x", "y")
        write_pattern(q, query_path)

        rc = main([
            "contain", "--query", str(query_path), "--views", str(views_path),
            "--strategy", "minimum",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "contained: yes" in out

        rc = main([
            "query", "--query", str(query_path), "--views", str(views_path),
            "--out", str(out_path),
        ])
        assert rc == 0
        result = json.loads(out_path.read_text())
        assert "x->y" in result

    def test_contain_reports_uncovered(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        views_path = tmp_path / "v.json"
        query_path = tmp_path / "q.json"
        main([
            "generate", "--dataset", "synthetic", "--nodes", "100",
            "--edges", "300", "--out", str(graph_path),
            "--views", str(views_path),
        ])
        q = build_pattern({"a": "zz-unknown", "b": "zz-unknown"}, [("a", "b")])
        write_pattern(q, query_path)
        rc = main(["contain", "--query", str(query_path), "--views", str(views_path)])
        assert rc == 1
        assert "uncovered" in capsys.readouterr().out

    def test_shard_command_text_and_json(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        main([
            "generate", "--dataset", "synthetic", "--nodes", "120",
            "--edges", "360", "--out", str(graph_path),
        ])
        capsys.readouterr()
        rc = main([
            "shard", "--graph", str(graph_path), "--shards", "3",
            "--strategy", "bfs",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bfs partition: 3 shards" in out
        assert "shard 0:" in out and "shard 2:" in out
        rc = main([
            "shard", "--graph", str(graph_path), "--shards", "4",
            "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["partition"]["shards"] == 4
        assert sum(payload["partition"]["sizes"]) == 120
        assert 0.0 <= payload["partition"]["edge_cut_fraction"] <= 1.0
        assert len(payload["per_shard"]) == 4
        for row in payload["per_shard"]:
            assert set(row) == {"nodes", "edges", "ghosts", "labels"}
        # Internal + cut edges account for every edge exactly once.
        total_edges = sum(row["edges"] for row in payload["per_shard"])
        assert total_edges == 360

    def test_stats_json_partition_section(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        main([
            "generate", "--dataset", "synthetic", "--nodes", "100",
            "--edges", "250", "--out", str(graph_path),
        ])
        capsys.readouterr()
        rc = main([
            "stats", "--graph", str(graph_path), "--shards", "2",
            "--partitioner", "label", "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        partition = payload["partition"]
        assert partition["strategy"] == "label"
        assert partition["shards"] == 2
        assert sum(partition["sizes"]) == 100
        assert 0.0 <= partition["edge_cut_fraction"] <= 1.0
        # Without --shards the section is absent.
        rc = main(["stats", "--graph", str(graph_path), "--format", "json"])
        assert rc == 0
        assert "partition" not in json.loads(capsys.readouterr().out)

    def test_query_not_contained_errors(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        views_path = tmp_path / "v.json"
        query_path = tmp_path / "q.json"
        main([
            "generate", "--dataset", "synthetic", "--nodes", "100",
            "--edges", "300", "--out", str(graph_path),
            "--views", str(views_path),
        ])
        main(["materialize", "--graph", str(graph_path), "--views", str(views_path)])
        q = build_pattern({"a": "zz-unknown", "b": "zz-unknown"}, [("a", "b")])
        write_pattern(q, query_path)
        rc = main(["query", "--query", str(query_path), "--views", str(views_path)])
        assert rc == 1
