"""Tests for view definitions, materialization, the distance index I(V),
and the ViewSet cache."""

import pytest

from repro.graph import BoundedPattern, Pattern
from repro.views import MaterializedView, ViewDefinition, ViewSet, materialize
from repro.views.view import materialize as materialize_fn

from helpers import build_bounded, build_graph, build_pattern


def simple_graph():
    return build_graph(
        {1: "A", 2: "B", 3: "B", 4: "C"},
        [(1, 2), (1, 3), (2, 4), (3, 4)],
    )


def ab_view(name="V"):
    return ViewDefinition(name, build_pattern({"a": "A", "b": "B"}, [("a", "b")]))


class TestViewDefinition:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            ViewDefinition("", build_pattern({"a": "A", "b": "B"}, [("a", "b")]))

    def test_rejects_edgeless_views(self):
        q = Pattern()
        q.add_node("a", "A")
        with pytest.raises(ValueError):
            ViewDefinition("V", q)

    def test_size_and_kind(self):
        v = ab_view()
        assert v.size == 3
        assert not v.is_bounded
        bounded = ViewDefinition(
            "B", build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
        )
        assert bounded.is_bounded


class TestMaterializeSimulation:
    def test_extension_contents(self):
        ext = materialize(ab_view(), simple_graph())
        assert ext.pairs_of(("a", "b")) == {(1, 2), (1, 3)}
        assert not ext.is_empty
        assert ext.num_pairs == 2
        assert ext.distances is None
        assert ext.distance_of((1, 2)) == 1

    def test_empty_extension(self):
        g = build_graph({1: "A"}, [])
        ext = materialize(ab_view(), g)
        assert ext.is_empty
        assert ext.pairs_of(("a", "b")) == set()

    def test_size_counts_nodes_and_pairs(self):
        ext = materialize(ab_view(), simple_graph())
        # Nodes touched: 1, 2, 3; pairs: 2.
        assert ext.size == 3 + 2


class TestMaterializeBounded:
    def test_distance_index(self):
        g = build_graph({1: "A", 2: "X", 3: "B"}, [(1, 2), (2, 3)])
        view = ViewDefinition(
            "V", build_bounded({"a": "A", "b": "B"}, [("a", "b", 3)])
        )
        ext = materialize(view, g)
        assert ext.pairs_of(("a", "b")) == {(1, 3)}
        assert ext.distance_of((1, 3)) == 2

    def test_index_keeps_minimum_distance(self):
        # Two view edges may materialize the same pair at different
        # depths; I(V) stores the shortest.
        g = build_graph(
            {1: "A", 2: "B", 3: "X"}, [(1, 2), (1, 3), (3, 2)]
        )
        view = ViewDefinition(
            "V",
            build_bounded(
                {"a": "A", "b1": "B", "b2": "B"},
                [("a", "b1", 1), ("a", "b2", 2)],
            ),
        )
        ext = materialize(view, g)
        assert ext.distance_of((1, 2)) == 1

    def test_empty_bounded_extension(self):
        g = build_graph({1: "A"}, [])
        view = ViewDefinition(
            "V", build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
        )
        ext = materialize(view, g)
        assert ext.is_empty
        assert ext.distances == {}


class TestViewSet:
    def test_add_and_lookup(self):
        vs = ViewSet([ab_view("V1")])
        vs.add(ab_view("V2"))
        assert "V1" in vs and "V2" in vs
        assert len(vs) == 2
        assert vs.cardinality == 2
        assert vs.names() == ["V1", "V2"]

    def test_duplicate_name_rejected(self):
        vs = ViewSet([ab_view("V1")])
        with pytest.raises(ValueError):
            vs.add(ab_view("V1"))

    def test_definition_size(self):
        vs = ViewSet([ab_view("V1"), ab_view("V2")])
        assert vs.definition_size == 6

    def test_materialize_all_and_some(self):
        vs = ViewSet([ab_view("V1"), ab_view("V2")])
        g = simple_graph()
        vs.materialize(g, names=["V1"])
        assert vs.is_materialized("V1")
        assert not vs.is_materialized("V2")
        vs.materialize(g)
        assert vs.is_materialized("V2")

    def test_extension_access_requires_materialization(self):
        vs = ViewSet([ab_view("V1")])
        with pytest.raises(KeyError):
            vs.extension("V1")

    def test_extension_fraction(self):
        vs = ViewSet([ab_view("V1")])
        g = simple_graph()
        vs.materialize(g)
        fraction = vs.extension_fraction(g)
        assert 0 < fraction < 1

    def test_subset_shares_extensions(self):
        vs = ViewSet([ab_view("V1"), ab_view("V2")])
        vs.materialize(simple_graph(), names=["V1"])
        sub = vs.subset(["V1"])
        assert sub.is_materialized("V1")
        assert len(sub) == 1

    def test_set_extension_validates_name(self):
        vs = ViewSet([ab_view("V1")])
        ext = materialize_fn(ab_view("other"), simple_graph())
        with pytest.raises(KeyError):
            vs.set_extension(ext)

    def test_drop_extension(self):
        vs = ViewSet([ab_view("V1")])
        vs.materialize(simple_graph())
        vs.drop_extension("V1")
        assert not vs.is_materialized("V1")


class TestAnswerPipeline:
    def setup_views(self):
        g = simple_graph()
        q = build_pattern(
            {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
        )
        vs = ViewSet(
            [
                ViewDefinition("Vab", q.subpattern([("a", "b")])),
                ViewDefinition("Vbc", q.subpattern([("b", "c")])),
                ViewDefinition("Vextra", ab_view("x").pattern),
            ]
        )
        return g, q, vs

    def test_answer_with_materialize_on_demand(self):
        from repro import answer_with_views, match

        g, q, vs = self.setup_views()
        answer = answer_with_views(q, vs, graph=g)
        assert answer
        assert answer.result.edge_matches == match(q, g).edge_matches
        assert set(answer.views_used) <= set(vs.names())
        assert answer.extension_size > 0

    def test_answer_selection_strategies(self):
        from repro import answer_with_views

        g, q, vs = self.setup_views()
        for selection in ("all", "minimal", "minimum"):
            answer = answer_with_views(q, vs, graph=g, selection=selection)
            assert answer.result.edge_matches[("a", "b")] == {(1, 2), (1, 3)}

    def test_answer_unknown_selection(self):
        from repro import answer_with_views

        g, q, vs = self.setup_views()
        with pytest.raises(ValueError):
            answer_with_views(q, vs, graph=g, selection="bogus")

    def test_answer_not_contained(self):
        from repro import answer_with_views
        from repro.errors import NotContainedError

        g, q, vs = self.setup_views()
        sub = vs.subset(["Vab"])
        with pytest.raises(NotContainedError):
            answer_with_views(q, sub, graph=g)

    def test_answer_bounded(self):
        from repro import answer_with_views, bounded_match

        g = build_graph({1: "A", 2: "X", 3: "B"}, [(1, 2), (2, 3)])
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
        vs = ViewSet(
            [
                ViewDefinition(
                    "V", build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
                )
            ]
        )
        answer = answer_with_views(q, vs, graph=g)
        assert answer.result.edge_matches == bounded_match(q, g).edge_matches
