"""The compact graph backend: snapshots, indexes and backend equivalence.

Covers the whole refactor stack:

* ``DataGraph`` version counter, incremental label index and the
  ``freeze()`` snapshot cache;
* ``CompactGraph``'s DataGraph-compatible read API;
* the property-based equivalence suite -- ``match`` / ``dual_match`` /
  ``match_join`` must produce identical results on the dict backend and
  on the frozen ``CompactGraph`` backend over randomized graphs,
  patterns and view suites;
* snapshot-bound extensions (id payloads, token matching, the MatchJoin
  fast path engaging and falling back correctly);
* the ``QueryEngine`` freezing ``G`` once and invalidating the snapshot
  through maintenance events.
"""

import random

import pytest

from helpers import (
    build_bounded,
    build_graph,
    build_pattern,
    random_labeled_graph,
    random_pattern,
)
from repro.core.containment import contains
from repro.core.matchjoin import (
    _compact_match_join,
    _flat_match_join,
    match_join,
)
from repro.datasets import generate_views, query_from_views, random_graph
from repro.engine import QueryEngine
from repro.graph import CompactGraph, DataGraph, P
from repro.graph.flatbuf import SharedCompactGraph
from repro.simulation import bounded_match, dual_match, match, strong_match
from repro.views.maintenance import IncrementalViewSet
from repro.views.storage import ViewSet
from repro.views.view import ViewDefinition


# ----------------------------------------------------------------------
# DataGraph: version counter, label index, freeze cache
# ----------------------------------------------------------------------
class TestVersionAndIndex:
    def test_version_bumps_on_mutations(self):
        g = DataGraph()
        v0 = g.version
        g.add_node(1, labels="A")
        assert g.version > v0
        v1 = g.version
        g.add_node(1)  # no-op: node exists, nothing changes
        assert g.version == v1
        g.add_edge(1, 2)
        v2 = g.version
        assert v2 > v1
        g.add_edge(1, 2)  # duplicate edge: no change
        assert g.version == v2
        g.remove_edge(1, 2)
        assert g.version > v2

    def test_label_index_tracks_mutations(self):
        g = build_graph({1: "A", 2: "B", 3: "B"}, [(1, 2)])
        assert set(g.nodes_with_label("B")) == {2, 3}
        g.add_node(4, labels="B")
        assert set(g.nodes_with_label("B")) == {2, 3, 4}
        g.remove_node(2)
        assert set(g.nodes_with_label("B")) == {3, 4}
        assert set(g.nodes_with_label("missing")) == set()
        assert g.label_index_stats() == {"A": 1, "B": 2}

    def test_label_index_matches_linear_scan_randomized(self):
        rng = random.Random(5)
        for _ in range(20):
            g = random_labeled_graph(rng, rng.randint(1, 40), rng.randint(0, 80))
            for _ in range(rng.randint(0, 10)):
                node = rng.randrange(60)
                if node in g and rng.random() < 0.3:
                    g.remove_node(node)
                else:
                    g.add_node(node, labels=rng.choice("ABC"))
            for label in "ABC":
                scanned = {v for v in g.nodes() if label in g.labels(v)}
                assert set(g.nodes_with_label(label)) == scanned

    def test_copy_preserves_index_and_independence(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        clone = g.copy()
        clone.add_node(3, labels="B")
        assert set(clone.nodes_with_label("B")) == {2, 3}
        assert set(g.nodes_with_label("B")) == {2}

    def test_freeze_is_cached_until_mutation(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        first = g.freeze()
        assert g.freeze() is first
        g.add_edge(2, 1)
        second = g.freeze()
        assert second is not first
        assert second.snapshot_version == g.version
        assert second.snapshot_token != first.snapshot_token

    def test_descendants_within_shortest_distances(self):
        # Diamond plus a long way round: BFS must report shortest hops
        # and must not blow up on parallel in-edges.
        g = build_graph(
            {i: "A" for i in range(6)},
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (0, 5)],
        )
        assert g.descendants_within(0, 3) == {1: 1, 2: 1, 5: 1, 3: 2, 4: 3}
        assert g.freeze().descendants_within(0, 3) == g.descendants_within(0, 3)


# ----------------------------------------------------------------------
# CompactGraph read API mirrors DataGraph
# ----------------------------------------------------------------------
class TestCompactGraphApi:
    def test_read_api_equivalence_randomized(self):
        rng = random.Random(11)
        for _ in range(15):
            g = random_labeled_graph(rng, rng.randint(1, 30), rng.randint(0, 60))
            f = g.freeze()
            assert isinstance(f, CompactGraph)
            assert f.freeze() is f
            assert len(f) == len(g)
            assert f.num_edges == g.num_edges
            assert f.size == g.size
            assert set(f.nodes()) == set(g.nodes())
            assert set(f.edges()) == set(g.edges())
            for v in g.nodes():
                assert v in f
                assert f.successors(v) == g.successors(v)
                assert f.predecessors(v) == g.predecessors(v)
                assert f.out_degree(v) == g.out_degree(v)
                assert f.in_degree(v) == g.in_degree(v)
                assert f.labels(v) == g.labels(v)
                assert f.attrs(v) == g.attrs(v)
                assert f.node_of(f.id_of(v)) == v
                bound = rng.randint(1, 4)
                assert f.descendants_within(v, bound) == g.descendants_within(
                    v, bound
                )
            for label in "ABC":
                assert set(f.nodes_with_label(label)) == set(
                    g.nodes_with_label(label)
                )

    def test_has_edge_and_missing_nodes(self):
        f = build_graph({1: "A", 2: "B"}, [(1, 2)]).freeze()
        assert f.has_edge(1, 2)
        assert not f.has_edge(2, 1)
        assert not f.has_edge(99, 1)
        assert 99 not in f

    def test_snapshot_is_isolated_from_later_mutations(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        f = g.freeze()
        g.add_node(3, labels="B")
        g.add_edge(2, 3)
        assert 3 not in f
        assert f.num_edges == 1
        assert set(f.nodes_with_label("B")) == {2}

    def test_attrs_are_copied_at_freeze_time(self):
        g = DataGraph()
        g.add_node(1, labels="A", attrs={"x": 1})
        f = g.freeze()
        g.add_node(1, attrs={"x": 2})
        assert f.attrs(1) == {"x": 1}


# ----------------------------------------------------------------------
# Backend equivalence: match / dual / strong on random instances
# ----------------------------------------------------------------------
class TestMatchEquivalence:
    def test_match_and_dual_match_randomized(self):
        rng = random.Random(23)
        for _ in range(60):
            g = random_labeled_graph(rng, rng.randint(2, 35), rng.randint(1, 90))
            q = random_pattern(rng, rng.randint(2, 6), rng.randint(1, 10))
            f = g.freeze()
            assert match(q, g) == match(q, f)
            assert dual_match(q, g) == dual_match(q, f)

    def test_self_loop_pattern_regression(self):
        # Regression: a self-loop pattern edge can re-queue ids for the
        # node whose batch is being propagated; a counter materialized
        # mid-pop must still count those queued witnesses, or they get
        # decremented twice and matches vanish.
        g = build_graph(
            {"a1": "A", "a2": "A", "a3": "A", "x": "A", "v": "B"},
            [("a1", "a2"), ("a2", "a3"), ("x", "x"),
             ("v", "a2"), ("v", "a3"), ("v", "x")],
        )
        q = build_pattern({"a": "A", "b": "B"}, [("a", "a"), ("b", "a")])
        result = match(q, g)
        assert result.node_matches == {"a": {"x"}, "b": {"v"}}
        assert match(q, g.freeze()) == result

    def test_self_loops_randomized(self):
        rng = random.Random(41)
        for _ in range(40):
            g = random_labeled_graph(rng, rng.randint(2, 25), rng.randint(1, 60))
            q = random_pattern(rng, rng.randint(2, 5), rng.randint(1, 8))
            for node in rng.sample(list(q.nodes()), rng.randint(1, 2)):
                q.add_edge(node, node)
            for node in rng.sample(list(g.nodes()), min(3, len(g))):
                g.add_edge(node, node)
            f = g.freeze()
            assert match(q, g) == match(q, f)
            assert dual_match(q, g) == dual_match(q, f)

    def test_strong_match_runs_on_snapshots(self):
        rng = random.Random(31)
        for _ in range(10):
            g = random_labeled_graph(rng, rng.randint(2, 20), rng.randint(1, 40))
            q = random_pattern(rng, rng.randint(2, 4), rng.randint(1, 5))
            result_dict, balls_dict = strong_match(q, g)
            result_frozen, balls_frozen = strong_match(q, g.freeze())
            assert result_dict == result_frozen
            assert len(balls_dict) == len(balls_frozen)

    def test_attribute_conditions_randomized(self):
        rng = random.Random(37)
        for _ in range(20):
            g = DataGraph()
            n = rng.randint(3, 25)
            for i in range(n):
                g.add_node(
                    i,
                    labels=rng.choice("AB"),
                    attrs={"score": rng.randint(0, 10)},
                )
            for _ in range(rng.randint(2, 50)):
                g.add_edge(rng.randrange(n), rng.randrange(n))
            q = build_pattern({}, [])
            q.add_node("hi", (P("score") >= 5).with_label("A"))
            q.add_node("any", rng.choice("AB"))
            q.add_edge("hi", "any")
            assert match(q, g) == match(q, g.freeze())

    def test_wildcard_condition_seeding(self):
        from repro.graph.conditions import TrueCondition

        g = build_graph({1: "A", 2: "B", 3: "C"}, [(1, 2), (2, 3)])
        q = build_pattern({}, [])
        q.add_node("a", "A")
        q.add_node("w", TrueCondition())
        q.add_edge("a", "w")
        assert match(q, g) == match(q, g.freeze())
        # "w" has no out-edge constraints, so every node simulates it.
        assert match(q, g).matches_of("w") == {1, 2, 3}
        assert match(q, g).edge_matches_of(("a", "w")) == {(1, 2)}


# ----------------------------------------------------------------------
# Backend equivalence: MatchJoin over snapshot-bound extensions
# ----------------------------------------------------------------------
def _materialized_pair(graph, definitions):
    """The same view suite materialized on both backends."""
    dict_views = ViewSet(definitions)
    dict_views.materialize(graph)
    frozen = graph.freeze()
    compact_views = ViewSet(definitions)
    compact_views.materialize(frozen)
    return dict_views, compact_views, frozen


class TestMatchJoinEquivalence:
    def test_randomized_equivalence_and_theorem1(self):
        labels = tuple(f"l{i}" for i in range(6))
        checked = 0
        for seed in range(12):
            graph = random_graph(200, 500, labels=labels, seed=seed)
            definitions = list(generate_views(labels, 10, seed=seed))
            dict_views, compact_views, frozen = _materialized_pair(
                graph, definitions
            )
            for qseed in range(3):
                query = query_from_views(
                    dict_views, 4, 6, seed=100 * seed + qseed
                )
                containment = contains(query, dict_views)
                assert containment.holds  # guaranteed by construction
                via_dict = match_join(query, containment, dict_views)
                via_compact = match_join(query, containment, compact_views)
                assert via_dict == via_compact
                # Theorem 1: MatchJoin equals direct evaluation, on
                # either backend.
                assert via_dict.edge_matches == match(query, graph).edge_matches
                assert via_dict.edge_matches == match(query, frozen).edge_matches
                checked += 1
        assert checked == 36

    def test_fast_path_engages_on_shared_snapshot(self):
        labels = tuple(f"l{i}" for i in range(6))
        graph = random_graph(150, 400, labels=labels, seed=3)
        definitions = list(generate_views(labels, 8, seed=3))
        dict_views, compact_views, _ = _materialized_pair(graph, definitions)
        query = query_from_views(dict_views, 4, 6, seed=7)
        containment = contains(query, dict_views)
        assert (
            _compact_match_join(query, containment, compact_views.extensions())
            is not None
        )
        # Dict-backend extensions carry no payload: fast path declines.
        assert (
            _compact_match_join(query, containment, dict_views.extensions())
            is None
        )

    def test_fast_path_declines_on_mixed_snapshots(self):
        labels = tuple(f"l{i}" for i in range(6))
        graph = random_graph(150, 400, labels=labels, seed=4)
        definitions = list(generate_views(labels, 8, seed=4))
        views = ViewSet(definitions)
        views.materialize(graph.freeze())
        query = query_from_views(views, 4, 6, seed=5)
        containment = contains(query, views)
        names = {
            name
            for refs in containment.mapping.values()
            for name, _ in refs
        }
        assert names
        # Re-materialize one needed view against a *different* snapshot:
        # tokens now disagree, so ids must not be mixed.
        graph.add_node("poke", labels=labels[0])
        views.materialize(graph.freeze(), names=[sorted(names)[0]])
        extensions = views.extensions()
        tokens = {
            extensions[name].compact.token
            for name in names
            if extensions[name].compact is not None
        }
        if len(tokens) > 1:
            assert _compact_match_join(query, containment, extensions) is None
        # Either way the public entry point stays correct.
        result = match_join(query, containment, views)
        assert result.edge_matches == match(query, graph).edge_matches

    def test_naive_engine_ignores_fast_path(self):
        labels = tuple(f"l{i}" for i in range(6))
        graph = random_graph(120, 320, labels=labels, seed=6)
        definitions = list(generate_views(labels, 8, seed=6))
        dict_views, compact_views, _ = _materialized_pair(graph, definitions)
        query = query_from_views(dict_views, 4, 5, seed=9)
        containment = contains(query, dict_views)
        naive = match_join(query, containment, compact_views, optimized=False)
        assert naive == match_join(query, containment, dict_views)

    def test_extensions_pickle_with_payload(self):
        import pickle

        labels = tuple(f"l{i}" for i in range(4))
        graph = random_graph(60, 150, labels=labels, seed=2)
        views = ViewSet(generate_views(labels, 5, seed=2))
        frozen = graph.freeze()
        views.materialize(frozen)
        revived = pickle.loads(pickle.dumps(views.extensions()))
        for name, extension in views.extensions().items():
            twin = revived[name]
            assert twin.edge_matches == extension.edge_matches
            assert twin.compact is not None
            assert twin.compact.token == extension.compact.token


# ----------------------------------------------------------------------
# ViewSet snapshot bookkeeping
# ----------------------------------------------------------------------
class TestSnapshotBookkeeping:
    def test_viewset_records_snapshot_token(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        view = ViewDefinition("v", build_pattern({"a": "A", "b": "B"}, [("a", "b")]))
        views = ViewSet([view])
        views.materialize(g)
        assert views.snapshot_token is None
        assert views.extension("v").snapshot_version is None
        frozen = g.freeze()
        views.materialize(frozen)
        assert views.snapshot_token == frozen.snapshot_token
        assert views.extension("v").snapshot_version == frozen.snapshot_version
        assert views.subset(["v"]).snapshot_token == frozen.snapshot_token


# ----------------------------------------------------------------------
# Engine: freeze once, reuse, invalidate through maintenance
# ----------------------------------------------------------------------
class TestEngineSnapshot:
    @pytest.fixture
    def workload(self):
        labels = tuple(f"l{i}" for i in range(6))
        graph = random_graph(150, 400, labels=labels, seed=8)
        views = ViewSet(generate_views(labels, 8, seed=8))
        queries = [query_from_views(views, 4, 6, seed=s) for s in range(4)]
        return graph, views, queries

    def test_snapshot_frozen_once_and_reused(self, workload):
        graph, views, queries = workload
        engine = QueryEngine(views, graph=graph)
        first = engine.snapshot()
        results = engine.answer_batch(queries)
        assert engine.snapshot() is first
        # Extensions materialized on demand are bound to that snapshot.
        assert views.snapshot_token == first.snapshot_token
        for result, query in zip(results, queries):
            assert result.edge_matches == match(query, graph).edge_matches

    def test_snapshot_follows_graph_mutations(self, workload):
        graph, views, queries = workload
        engine = QueryEngine(views, graph=graph)
        first = engine.snapshot()
        graph.add_node("fresh", labels="l0")
        second = engine.snapshot()
        assert second is not first
        assert second.snapshot_version == graph.version

    def test_maintenance_event_refreshes_snapshot(self, workload):
        graph, views, queries = workload
        definitions = list(views)[:2]
        tracker = IncrementalViewSet(definitions, graph)
        engine = QueryEngine(ViewSet(definitions), graph=graph)
        engine.attach_maintenance(tracker)
        # The engine adopts the tracker's maintained graph copy, so
        # snapshots follow the same update stream the views do.
        assert engine.graph is tracker.graph
        first = engine.snapshot()
        assert first is not None
        nodes = list(tracker.graph.nodes())
        source = next(
            node for node in nodes
            if not tracker.graph.has_edge(node, nodes[0])
        )
        tracker.insert_edge(source, nodes[0])
        second = engine.snapshot()
        # The update is visible, but absorbed as a journal-driven
        # refresh of the previous snapshot -- not a drop-and-rebuild.
        assert second is not first
        assert second.snapshot_version == tracker.graph.version
        assert second.extends_token == first.snapshot_token
        assert second.has_edge(source, nodes[0])

    def test_views_only_engine_has_no_snapshot(self, workload):
        _, views, _ = workload
        engine = QueryEngine(views)
        assert engine.snapshot() is None


# ----------------------------------------------------------------------
# The equivalence suite over the flat shared-memory backend
# ----------------------------------------------------------------------
def _freeze(graph, backend):
    """``backend``: "compact" (plain snapshot) or "flat" (shared)."""
    if backend == "flat":
        frozen = graph.freeze(shared=True)
        assert isinstance(frozen, SharedCompactGraph)
        return frozen
    return graph.freeze()


FROZEN_BACKENDS = pytest.mark.parametrize("backend", ["compact", "flat"])


class TestFlatBackendEquivalence:
    """The backend-equivalence suite re-run with ``freeze(shared=True)``.

    A :class:`SharedCompactGraph` reuses the plain snapshot's row
    objects, so in-process evaluation must be bit-identical to the
    compact backend -- and view suites materialized against it carry
    :class:`~repro.views.flatpack.FlatExtension` payloads, engaging the
    flat MatchJoin fixpoint instead of the per-candidate one.
    """

    @FROZEN_BACKENDS
    def test_match_and_dual_match_randomized(self, backend):
        rng = random.Random(51)
        for _ in range(25):
            g = random_labeled_graph(rng, rng.randint(2, 30), rng.randint(1, 70))
            q = random_pattern(rng, rng.randint(2, 5), rng.randint(1, 8))
            frozen = _freeze(g, backend)
            assert match(q, g) == match(q, frozen)
            assert dual_match(q, g) == dual_match(q, frozen)

    @FROZEN_BACKENDS
    def test_bounded_match_randomized(self, backend):
        rng = random.Random(53)
        for _ in range(15):
            g = random_labeled_graph(rng, rng.randint(3, 25), rng.randint(2, 60))
            base = random_pattern(rng, rng.randint(2, 4), rng.randint(1, 5))
            q = build_bounded(
                {u: base.condition(u) for u in base.nodes()},
                [(u, w, rng.randint(1, 3)) for u, w in base.edges()],
            )
            assert bounded_match(q, g) == bounded_match(q, _freeze(g, backend))

    @FROZEN_BACKENDS
    def test_matchjoin_equivalence_and_theorem1(self, backend):
        labels = tuple(f"l{i}" for i in range(6))
        for seed in range(6):
            graph = random_graph(180, 450, labels=labels, seed=seed)
            definitions = list(generate_views(labels, 9, seed=seed))
            dict_views = ViewSet(definitions)
            dict_views.materialize(graph)
            frozen = _freeze(graph, backend)
            backed_views = ViewSet(definitions)
            backed_views.materialize(frozen)
            for qseed in range(2):
                query = query_from_views(
                    dict_views, 4, 6, seed=100 * seed + qseed
                )
                containment = contains(query, dict_views)
                via_dict = match_join(query, containment, dict_views)
                via_backed = match_join(query, containment, backed_views)
                assert via_dict == via_backed
                # Theorem 1 on the flat backend too.
                assert (
                    via_backed.edge_matches
                    == match(query, frozen).edge_matches
                )

    def test_flat_fast_path_engages_on_flat_extensions(self):
        labels = tuple(f"l{i}" for i in range(6))
        graph = random_graph(150, 400, labels=labels, seed=31)
        definitions = list(generate_views(labels, 8, seed=31))
        shared = graph.freeze(shared=True)
        flat_views = ViewSet(definitions)
        flat_views.materialize(shared)
        query = query_from_views(flat_views, 4, 6, seed=31)
        containment = contains(query, flat_views)
        fast = _flat_match_join(query, containment, flat_views.extensions())
        assert fast is not None
        assert fast == match_join(query, containment, flat_views)
        # Plain compact extensions decline the flat path (no row tables)
        # but keep the per-candidate fast path.
        compact_views = ViewSet(definitions)
        compact_views.materialize(graph.copy().freeze())
        assert (
            _flat_match_join(query, containment, compact_views.extensions())
            is None
        )

    def test_flat_extensions_survive_refresh_chain(self):
        labels = tuple(f"l{i}" for i in range(5))
        graph = random_graph(120, 300, labels=labels, seed=33)
        shared = graph.freeze(shared=True)
        views = ViewSet(generate_views(labels, 6, seed=33))
        views.materialize(shared)
        token = views.snapshot_token
        # Edge churn refreshes the snapshot in place of a rebuild: ids
        # stay stable and the flat base segment is retained.
        nodes = sorted(graph.nodes(), key=repr)
        source = next(
            v for v in nodes if not graph.has_edge(v, nodes[-1])
        )
        graph.add_edge(source, nodes[-1])
        refreshed = graph.freeze()
        assert isinstance(refreshed, SharedCompactGraph)
        assert refreshed.extends_token == token
        assert refreshed.flat_store is shared.flat_store
        for v in nodes:
            assert refreshed.id_of(v) == shared.id_of(v)
