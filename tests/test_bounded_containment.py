"""Tests for bounded view matches and Bcontain/Bminimal/Bminimum
(Section VI-B; Proposition 11, Theorem 10, Example 9)."""

import random

import pytest

from repro.core.bounded.bcontainment import bounded_contains
from repro.core.bounded.bminimal import bounded_minimal_views
from repro.core.bounded.bminimum import bounded_minimum_views
from repro.core.bounded.bview_match import view_match_bounded
from repro.graph import ANY, BoundedPattern
from repro.views import ViewDefinition

from helpers import build_bounded


def fig6_query():
    """A Fig. 6-style weighted query with the two facts Example 9 states:
    V3 covers {(A,B), (B,E)} and V7 covers nothing because the C-to-D
    distance in Qb exceeds V7's bound."""
    return build_bounded(
        {"A": "A", "B": "B", "C": "C", "D": "D", "E": "E"},
        [
            ("A", "B", 2),
            ("A", "C", 3),
            ("B", "D", 3),
            ("C", "D", 3),
            ("B", "E", 3),
        ],
    )


def view_v3():
    return ViewDefinition(
        "V3",
        build_bounded({"A": "A", "B": "B", "E": "E"}, [("A", "B", 3), ("B", "E", 3)]),
    )


def view_v7():
    return ViewDefinition(
        "V7",
        build_bounded(
            {"A": "A", "B": "B", "C": "C", "D": "D"},
            [("A", "B", 3), ("A", "C", 3), ("C", "D", 2)],
        ),
    )


class TestExample9:
    def test_v3_view_match(self):
        match = view_match_bounded(fig6_query(), view_v3())
        assert match.covered == {("A", "B"), ("B", "E")}

    def test_v7_view_match_empty(self):
        match = view_match_bounded(fig6_query(), view_v7())
        assert match.covered == frozenset()

    def test_full_cover_with_enough_views(self):
        views = [
            view_v3(),
            ViewDefinition(
                "Vrest",
                build_bounded(
                    {"A": "A", "B": "B", "C": "C", "D": "D"},
                    [("A", "C", 3), ("B", "D", 3), ("C", "D", 3)],
                ),
            ),
        ]
        result = bounded_contains(fig6_query(), views)
        assert result.holds


class TestSoundnessGuard:
    """The direct-weight guard from DESIGN.md: a view edge with a bound
    smaller than the pattern edge's own bound must not be credited for
    that edge, even when a shorter alternate path exists in Qb."""

    def make_query(self):
        return build_bounded(
            {"A": "A", "C": "C", "B": "B"},
            [("A", "C", 1), ("C", "B", 2), ("A", "B", 5)],
        )

    def test_alternate_path_does_not_cover_long_edge(self):
        view = ViewDefinition(
            "V", build_bounded({"A": "A", "B": "B"}, [("A", "B", 3)])
        )
        match = view_match_bounded(self.make_query(), view)
        # Weighted distance A->B through C is 3 <= 3, but fe(A,B) = 5:
        # matches of the pattern edge may sit at distance 4 or 5, which
        # the view does not materialize.
        assert ("A", "B") not in match.covered

    def test_equal_bound_covers(self):
        view = ViewDefinition(
            "V", build_bounded({"A": "A", "B": "B"}, [("A", "B", 5)])
        )
        match = view_match_bounded(self.make_query(), view)
        assert ("A", "B") in match.covered

    def test_star_view_bound_covers_everything_reachable(self):
        view = ViewDefinition(
            "V", build_bounded({"A": "A", "B": "B"}, [("A", "B", ANY)])
        )
        match = view_match_bounded(self.make_query(), view)
        assert ("A", "B") in match.covered

    def test_star_pattern_edge_needs_star_view(self):
        query = build_bounded({"A": "A", "B": "B"}, [("A", "B", ANY)])
        finite = ViewDefinition(
            "Vf", build_bounded({"A": "A", "B": "B"}, [("A", "B", 100)])
        )
        star = ViewDefinition(
            "Vs", build_bounded({"A": "A", "B": "B"}, [("A", "B", ANY)])
        )
        assert ("A", "B") not in view_match_bounded(query, finite).covered
        assert ("A", "B") in view_match_bounded(query, star).covered


class TestWeightedPathReachability:
    """Node-level weighted-path matching is kept (it is sound): a view
    edge may traverse several pattern edges when checking structure."""

    def test_view_edge_spans_pattern_path(self):
        # Qb: A -(1)-> X -(1)-> B ; view: A -(2)-> B plus nothing else.
        query = build_bounded(
            {"A": "A", "X": "X", "B": "B"}, [("A", "X", 1), ("X", "B", 1)]
        )
        view = ViewDefinition(
            "V",
            build_bounded(
                {"A": "A", "X": "X", "B": "B"},
                [("A", "X", 1), ("A", "B", 2), ("X", "B", 1)],
            ),
        )
        match = view_match_bounded(query, view)
        # The view's (A,B,2) edge is satisfied by the A->X->B path when
        # simulating the view over Qb, so A/X/B all survive and the two
        # pattern edges are covered by the view's (A,X,1) and (X,B,1).
        assert match.covered == {("A", "X"), ("X", "B")}

    def test_star_pattern_edge_blocks_finite_traversal(self):
        # The A->X leg is *, so no finite view bound can rely on it.
        query = build_bounded(
            {"A": "A", "X": "X", "B": "B"}, [("A", "X", ANY), ("X", "B", 1)]
        )
        view = ViewDefinition(
            "V", build_bounded({"A": "A", "B": "B"}, [("A", "B", 10)])
        )
        assert view_match_bounded(query, view).covered == frozenset()


class TestBminimalBminimum:
    def views(self):
        q = fig6_query()
        singles = [
            ViewDefinition(f"E{i}", q.subpattern([edge]))
            for i, edge in enumerate(q.edges())
        ]
        big = ViewDefinition(
            "BIG",
            build_bounded(
                {"A": "A", "B": "B", "C": "C", "D": "D"},
                [("A", "B", 2), ("A", "C", 3), ("B", "D", 3), ("C", "D", 3)],
            ),
        )
        return singles + [big]

    def test_bminimal_holds_and_is_minimal(self):
        q = fig6_query()
        result = bounded_minimal_views(q, self.views())
        assert result.holds
        chosen = [v for v in self.views() if v.name in result.views_used()]
        for leave_out in result.views_used():
            rest = [v for v in chosen if v.name != leave_out]
            assert not bounded_contains(q, rest).holds

    def test_bminimum_smaller_or_equal(self):
        q = fig6_query()
        mnl = bounded_minimal_views(q, self.views())
        mnm = bounded_minimum_views(q, self.views())
        assert mnm.holds
        # Greedy grabs BIG (4 edges) + the (B,E) single = 2 views.
        assert len(mnm.views_used()) == 2
        assert len(mnm.views_used()) <= len(mnl.views_used())

    def test_not_contained_reports_uncovered(self):
        q = fig6_query()
        views = [view_v7()]
        result = bounded_contains(q, views)
        assert not result.holds
        assert result.uncovered == q.edge_set()


class TestMixedPlainAndBounded:
    def test_plain_query_bounded_views(self):
        from repro.core.containment import contains

        query = build_bounded(
            {"A": "A", "B": "B"}, [("A", "B", 1)]
        ).unbounded_pattern()
        view = ViewDefinition(
            "V", build_bounded({"A": "A", "B": "B"}, [("A", "B", 2)])
        )
        result = contains(query, [view])
        assert result.holds  # bound 1 <= 2

    def test_bounded_query_plain_views(self):
        from repro.core.containment import contains

        query = build_bounded({"A": "A", "B": "B"}, [("A", "B", 2)])
        plain_view = ViewDefinition(
            "V", build_bounded({"A": "A", "B": "B"}, [("A", "B", 1)]).unbounded_pattern()
        )
        result = contains(query, [plain_view])
        assert not result.holds  # bound 2 > 1

    def test_bound_one_query_plain_views(self):
        from repro.core.containment import contains

        query = build_bounded({"A": "A", "B": "B"}, [("A", "B", 1)])
        plain_view = ViewDefinition(
            "V",
            build_bounded({"A": "A", "B": "B"}, [("A", "B", 1)]).unbounded_pattern(),
        )
        assert contains(query, [plain_view]).holds
