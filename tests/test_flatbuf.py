"""Flat-buffer shared-memory snapshots: lifecycle, attach, equivalence.

Covers the zero-copy storage core of :mod:`repro.graph.flatbuf` and its
view-payload counterpart :mod:`repro.views.flatpack`:

* segment lifecycle -- refcounted unlink on the last reference drop,
  survival across ``refreshed`` chains (one base segment per chain), no
  leaked ``/dev/shm`` entries after process-pool round trips;
* the plain-``bytes`` fallback behind ``REPRO_FLAT_BACKEND=bytes``;
* attach-not-unpickle shipping: a :class:`SharedCompactGraph` or a
  :class:`FlatExtension` pickles to a segment handle and reconstructs
  with identical read results, in-process and across a process pool;
* engine/server integration: ``shared_snapshots`` freezing, ship
  telemetry in ``ExecutionStats`` and ``QueryEngine.ship_stats()``.
"""

import gc
import glob
import pickle
import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from helpers import build_graph, random_labeled_graph
from repro.core.containment import contains
from repro.core.matchjoin import match_join
from repro.datasets import generate_views, query_from_views, random_graph
from repro.engine import QueryEngine
from repro.graph import DataGraph
from repro.graph.flatbuf import (
    _HAVE_SHM,
    BACKEND_ENV,
    FILE_DIR_ENV,
    SEGMENT_PREFIX,
    FlatStore,
    SegmentFormatError,
    SharedCompactGraph,
    live_segment_names,
    verify_segment_file,
)
from repro.simulation import match
from repro.views.flatpack import FlatExtension, FlatMaterializedView
from repro.views.storage import ViewSet


def _shm_entries():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def _sample_graph(seed=7, nodes=40, edges=120):
    return random_labeled_graph(random.Random(seed), nodes, edges)


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_unlink_on_last_reference_drop(self):
        g = _sample_graph()
        shared = g.freeze(shared=True)
        assert isinstance(shared, SharedCompactGraph)
        name = shared.flat_store.segment.name
        assert name in live_segment_names()
        del shared
        g._frozen = None  # drop the freeze cache's reference too
        gc.collect()
        assert name not in live_segment_names()

    def test_refresh_chain_shares_base_segment(self):
        g = _sample_graph(seed=9)
        first = g.freeze(shared=True)
        nodes = list(g.nodes())
        added = []
        for v in nodes[:3]:
            w = nodes[-1] if v != nodes[-1] else nodes[0]
            if not g.has_edge(v, w):
                g.add_edge(v, w)
                added.append((v, w))
        assert added
        second = g.freeze()
        assert isinstance(second, SharedCompactGraph)
        assert second is not first
        assert second.extends_token == first.snapshot_token
        # The refresh rides the same segment as a patch overlay.
        assert second.flat_store is first.flat_store
        for v, w in added:
            assert second.has_edge(v, w)
        # One live segment for the whole chain; dropping every
        # generation unlinks it.
        name = first.flat_store.segment.name
        del first, second
        g._frozen = None
        gc.collect()
        assert name not in live_segment_names()

    def test_share_is_idempotent(self):
        g = _sample_graph(seed=3)
        shared = g.freeze(shared=True)
        assert SharedCompactGraph.share(shared) is shared
        assert g.freeze(shared=True) is shared

    def test_no_dev_shm_leak_after_suite_of_drops(self):
        before = set(_shm_entries())
        for seed in range(3):
            g = _sample_graph(seed=seed)
            shared = g.freeze(shared=True)
            pickle.loads(pickle.dumps(shared))
            del shared
            g._frozen = None
        gc.collect()
        assert set(_shm_entries()) <= before


# ----------------------------------------------------------------------
# Bytes fallback
# ----------------------------------------------------------------------
class TestBytesFallback:
    def test_bytes_backend_round_trip(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "bytes")
        g = _sample_graph(seed=5)
        shared = g.freeze(shared=True)
        assert shared.flat_store.backend == "bytes"
        # No named segments exist, so nothing can leak.
        assert shared.flat_store.segment.name not in live_segment_names()
        revived = pickle.loads(pickle.dumps(shared))
        assert set(revived.nodes()) == set(g.nodes())
        assert set(revived.edges()) == set(g.edges())
        for v in g.nodes():
            assert revived.labels(v) == g.labels(v)

    def test_flat_store_tables_identical_across_backends(self, monkeypatch):
        g = _sample_graph(seed=6)
        shm_tables = g.freeze(shared=True).flat_table_bytes()
        g2 = _sample_graph(seed=6)
        monkeypatch.setenv(BACKEND_ENV, "bytes")
        bytes_tables = g2.freeze(shared=True).flat_table_bytes()
        assert shm_tables == bytes_tables


# ----------------------------------------------------------------------
# Attach semantics
# ----------------------------------------------------------------------
class TestAttach:
    def test_snapshot_pickle_is_a_handle(self):
        g = _sample_graph(seed=8, nodes=300, edges=900)
        plain = pickle.dumps(g.freeze())
        shared = pickle.dumps(g.freeze(shared=True))
        assert len(shared) < len(plain) / 5

    def test_in_process_attach_reuses_store(self):
        g = _sample_graph(seed=4)
        shared = g.freeze(shared=True)
        revived = pickle.loads(pickle.dumps(shared))
        # Same process: the pickle resolves to the same mapped segment,
        # not a copy of the buffers.
        assert revived.flat_store.segment is shared.flat_store.segment
        assert set(revived.nodes()) == set(shared.nodes())
        for v in g.nodes():
            assert revived.successors(v) == shared.successors(v)
            assert revived.attrs(v) == shared.attrs(v)

    def test_flat_extension_pair_rows_match_edge_matches(self):
        labels = tuple(f"l{i}" for i in range(4))
        graph = random_graph(80, 200, labels=labels, seed=1)
        shared = graph.freeze(shared=True)
        views = ViewSet(generate_views(labels, 5, seed=1))
        views.materialize(shared)
        checked = 0
        for name in views.names():
            if not views.is_materialized(name):
                continue
            view = views.extension(name)
            assert isinstance(view, FlatMaterializedView)
            payload = view.compact
            assert isinstance(payload, FlatExtension)
            decode = payload.nodes.__getitem__
            for edge in payload.edge_order:
                src_row, tgt_row = payload.pair_rows(edge)
                pairs = {
                    (decode(v), decode(w)) for v, w in zip(src_row, tgt_row)
                }
                assert pairs == view.edge_matches[edge]
                checked += 1
        assert checked

    def test_flat_extension_pickle_round_trip(self):
        labels = tuple(f"l{i}" for i in range(4))
        graph = random_graph(60, 150, labels=labels, seed=2)
        shared = graph.freeze(shared=True)
        views = ViewSet(generate_views(labels, 5, seed=2))
        views.materialize(shared)
        revived = pickle.loads(pickle.dumps(views.extensions()))
        for name, view in views.extensions().items():
            twin = revived[name]
            assert twin.edge_matches == view.edge_matches
            assert isinstance(twin.compact, FlatExtension)
            assert twin.compact.token == view.compact.token


# ----------------------------------------------------------------------
# Cross-process round trips (the actual zero-copy path)
# ----------------------------------------------------------------------
def _remote_probe(shared):
    return (
        sorted(shared.nodes(), key=repr)[:5],
        shared.num_edges,
        type(shared).__name__,
    )


def _remote_match(args):
    query, views_blob = args
    views = pickle.loads(views_blob)
    containment = contains(query, views)
    return match_join(query, containment, views)


class TestCrossProcess:
    def test_worker_attaches_snapshot(self):
        g = _sample_graph(seed=12, nodes=120, edges=360)
        shared = g.freeze(shared=True)
        with ProcessPoolExecutor(max_workers=1) as pool:
            nodes, num_edges, typename = pool.submit(
                _remote_probe, shared
            ).result()
        assert typename == "SharedCompactGraph"
        assert num_edges == shared.num_edges
        assert nodes == sorted(shared.nodes(), key=repr)[:5]

    def test_matchjoin_equal_across_process_boundary(self):
        labels = tuple(f"l{i}" for i in range(5))
        graph = random_graph(120, 320, labels=labels, seed=13)
        shared = graph.freeze(shared=True)
        views = ViewSet(generate_views(labels, 6, seed=13))
        views.materialize(shared)
        query = query_from_views(views, 4, 6, seed=13)
        containment = contains(query, views)
        local = match_join(query, containment, views)
        views_blob = pickle.dumps(views)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_remote_match, (query, views_blob)).result()
        assert remote == local
        assert remote.edge_matches == match(query, graph).edge_matches

    def test_no_segment_leak_after_pool(self):
        before = set(_shm_entries())
        g = _sample_graph(seed=14, nodes=80, edges=240)
        shared = g.freeze(shared=True)
        with ProcessPoolExecutor(max_workers=2) as pool:
            for future in [
                pool.submit(_remote_probe, shared) for _ in range(4)
            ]:
                future.result()
        name = shared.flat_store.segment.name
        del shared
        g._frozen = None
        gc.collect()
        assert name not in live_segment_names()
        assert set(_shm_entries()) <= before


# ----------------------------------------------------------------------
# Engine + ship telemetry
# ----------------------------------------------------------------------
class TestEngineIntegration:
    @pytest.fixture
    def workload(self):
        labels = tuple(f"l{i}" for i in range(5))
        graph = random_graph(100, 260, labels=labels, seed=21)
        views = ViewSet(generate_views(labels, 6, seed=21))
        queries = [query_from_views(views, 4, 6, seed=s) for s in range(3)]
        return graph, views, queries

    def test_process_engine_ships_flat_snapshots(self, workload):
        graph, views, queries = workload
        engine = QueryEngine(
            views, graph=graph, executor="process", workers=2
        )
        assert isinstance(engine.snapshot(), SharedCompactGraph)
        results = engine.answer_batch(queries)
        serial = QueryEngine(
            ViewSet(list(views)), graph=graph
        ).answer_batch(queries)
        assert results == serial
        shipped = [r.stats for r in results if r.stats.ship_bytes]
        assert shipped, "at least one result must carry ship telemetry"
        assert all(s.ship_seconds >= 0.0 for s in shipped)
        totals = engine.ship_stats()
        assert totals["batches"] >= 1
        assert totals["bytes"] >= max(s.ship_bytes for s in shipped)

    def test_serial_engine_ships_nothing(self, workload):
        graph, views, queries = workload
        engine = QueryEngine(views, graph=graph)
        results = engine.answer_batch(queries)
        assert all(r.stats.ship_bytes == 0 for r in results)
        assert engine.ship_stats() == {
            "batches": 0,
            "bytes": 0,
            "seconds": 0.0,
        }

    def test_maintenance_rebind_keeps_views_flat(self, workload):
        from repro.views.maintenance import IncrementalViewSet

        graph, views, queries = workload
        definitions = list(views)
        tracker = IncrementalViewSet(definitions, graph)
        engine = QueryEngine(
            ViewSet(definitions),
            graph=graph,
            executor="process",
            workers=2,
        )
        engine.attach_maintenance(tracker)
        before = engine.answer_batch(queries)
        catalog = engine._views
        flat_names = [
            name
            for name in catalog.names()
            if catalog.is_materialized(name)
            and isinstance(catalog.extension(name), FlatMaterializedView)
        ]
        assert flat_names
        nodes = list(tracker.graph.nodes())
        source = next(
            v for v in nodes if not tracker.graph.has_edge(v, nodes[0])
        )
        tracker.insert_edge(source, nodes[0])
        # The refresh is lazy: the next read rebinds the catalog.
        after = engine.answer_batch(queries)
        for query, result in zip(queries, after):
            assert (
                result.edge_matches
                == match(query, tracker.graph).edge_matches
            )
        snapshot = engine.snapshot()
        assert isinstance(snapshot, SharedCompactGraph)
        # Extensions were re-stamped/bound without losing flatness.
        restamped = 0
        for name in flat_names:
            if not catalog.is_materialized(name):
                continue
            view = catalog.extension(name)
            if view.compact.token == snapshot.snapshot_token:
                assert isinstance(view, FlatMaterializedView)
                restamped += 1
        assert restamped

    def test_shared_snapshots_opt_out(self, workload):
        graph, views, queries = workload
        engine = QueryEngine(
            views,
            graph=graph,
            executor="process",
            workers=2,
            shared_snapshots=False,
        )
        assert not isinstance(engine.snapshot(), SharedCompactGraph)
        results = engine.answer_batch(queries)
        serial = QueryEngine(
            ViewSet(list(views)), graph=graph
        ).answer_batch(queries)
        assert results == serial


# ----------------------------------------------------------------------
# Backend matrix: every suite invariant must hold on every backend
# ----------------------------------------------------------------------
BACKENDS = ("shm", "bytes", "file")


@pytest.fixture(params=BACKENDS)
def flat_backend(request, monkeypatch, tmp_path):
    backend = request.param
    if backend == "shm" and not _HAVE_SHM:
        pytest.skip("shared memory unavailable on this platform")
    spool = tmp_path / "spool"
    spool.mkdir()
    monkeypatch.setenv(BACKEND_ENV, backend)
    monkeypatch.setenv(FILE_DIR_ENV, str(spool))
    return backend


class TestBackendMatrix:
    def test_freeze_uses_selected_backend(self, flat_backend):
        g = _sample_graph(seed=31)
        shared = g.freeze(shared=True)
        assert shared.flat_store.backend == flat_backend

    def test_pickle_round_trip_equivalence(self, flat_backend):
        g = _sample_graph(seed=32)
        shared = g.freeze(shared=True)
        revived = pickle.loads(pickle.dumps(shared))
        assert set(revived.nodes()) == set(g.nodes())
        assert set(revived.edges()) == set(g.edges())
        for v in g.nodes():
            assert revived.labels(v) == g.labels(v)
            assert revived.successors(v) == shared.successors(v)
            assert revived.attrs(v) == g.attrs(v)

    def test_matchjoin_equal_on_every_backend(self, flat_backend):
        labels = tuple(f"l{i}" for i in range(4))
        graph = random_graph(60, 150, labels=labels, seed=33)
        shared = graph.freeze(shared=True)
        views = ViewSet(generate_views(labels, 5, seed=33))
        views.materialize(shared)
        query = query_from_views(views, 4, 6, seed=33)
        containment = contains(query, views)
        result = match_join(query, containment, views)
        assert result.edge_matches == match(query, graph).edge_matches

    def test_no_leak_after_drop(self, flat_backend, tmp_path):
        g = _sample_graph(seed=34)
        shared = g.freeze(shared=True)
        name = shared.flat_store.segment.name
        del shared
        g._frozen = None
        gc.collect()
        assert name not in live_segment_names()
        # The file backend spools into REPRO_FLAT_DIR; the owner's drop
        # must delete the spool file, leaving the directory empty.
        assert not list((tmp_path / "spool").glob("*.seg"))


# ----------------------------------------------------------------------
# File backend: on-disk format validation
# ----------------------------------------------------------------------
# <8sIIQIIQ header: magic @0, version @8, flags @12, nbytes @16,
# payload CRC @24, directory CRC @28, directory length @32; payload @40.
_PAYLOAD_OFFSET = 40


def _saved_store(tmp_path):
    from array import array

    store = FlatStore.pack(
        arrays={"xs": array("q", range(64)), "empty": array("q", [])},
        blobs={"tag": pickle.dumps("hello")},
    )
    path = tmp_path / "unit.seg"
    store.save(path)
    return path


def _corrupted_copy(path, offset, value=None):
    data = bytearray(path.read_bytes())
    data[offset] = data[offset] ^ 0xFF if value is None else value
    target = path.with_name(f"corrupt-{offset}-{path.name}")
    target.write_bytes(bytes(data))
    return target


class TestFileBackend:
    def test_save_open_round_trip(self, tmp_path):
        path = _saved_store(tmp_path)
        reopened = FlatStore.open(path, verify=True)
        assert reopened.backend == "file"
        assert list(reopened.ints("xs")) == list(range(64))
        assert list(reopened.ints("empty")) == []
        assert reopened.obj("tag") == "hello"
        assert reopened.on_disk_bytes == path.stat().st_size
        assert verify_segment_file(path) > 0

    def test_bad_magic_rejected(self, tmp_path):
        bad = _corrupted_copy(_saved_store(tmp_path), 0)
        with pytest.raises(SegmentFormatError, match="magic"):
            FlatStore.open(bad)

    def test_wrong_version_rejected(self, tmp_path):
        bad = _corrupted_copy(_saved_store(tmp_path), 8, value=99)
        with pytest.raises(SegmentFormatError, match="version"):
            FlatStore.open(bad)

    def test_payload_corruption_detected(self, tmp_path):
        bad = _corrupted_copy(_saved_store(tmp_path), _PAYLOAD_OFFSET + 8)
        with pytest.raises(SegmentFormatError):
            verify_segment_file(bad)
        with pytest.raises(SegmentFormatError):
            FlatStore.open(bad, verify=True)

    def test_directory_corruption_detected(self, tmp_path):
        path = _saved_store(tmp_path)
        # The pickled table directory is the file's trailer.
        bad = _corrupted_copy(path, path.stat().st_size - 1)
        with pytest.raises(SegmentFormatError):
            FlatStore.open(bad)

    def test_truncated_file_rejected(self, tmp_path):
        path = _saved_store(tmp_path)
        truncated = path.with_name("truncated.seg")
        truncated.write_bytes(path.read_bytes()[:24])
        with pytest.raises(SegmentFormatError):
            FlatStore.open(truncated)

    def test_truncated_payload_rejected(self, tmp_path):
        path = _saved_store(tmp_path)
        truncated = path.with_name("short.seg")
        truncated.write_bytes(path.read_bytes()[: _PAYLOAD_OFFSET + 16])
        with pytest.raises(SegmentFormatError):
            FlatStore.open(truncated)


# ----------------------------------------------------------------------
# FlatStore unit coverage
# ----------------------------------------------------------------------
class TestFlatStore:
    def test_pack_and_read_back(self):
        from array import array

        arrays = {"a": array("q", [1, 2, 3]), "b": array("q", [])}
        blobs = {"meta": pickle.dumps({"k": "v"})}
        store = FlatStore.pack(arrays=arrays, blobs=blobs)
        assert list(store.ints("a")) == [1, 2, 3]
        assert list(store.ints("b")) == []
        assert store.obj("meta") == {"k": "v"}
        assert store.obj("meta") is store.obj("meta")  # memoized
        sizes = store.table_bytes()
        assert sizes["a"] == 3 * 8
        assert sizes["b"] == 0
        assert store.total_bytes >= sum(sizes.values())

    def test_store_survives_pickle(self):
        from array import array

        store = FlatStore.pack(
            arrays={"xs": array("q", range(10))},
            blobs={"tag": pickle.dumps("hello")},
        )
        revived = pickle.loads(pickle.dumps(store))
        assert list(revived.ints("xs")) == list(range(10))
        assert revived.obj("tag") == "hello"
