"""Tests for MatchResult and graph statistics."""

import pytest

from repro.graph.stats import graph_stats, size_fraction
from repro.simulation.result import MatchResult, edge_matches_from_nodes

from helpers import build_graph


class TestMatchResult:
    def make(self):
        return MatchResult(
            node_matches={"a": {1}, "b": {2, 3}},
            edge_matches={("a", "b"): {(1, 2), (1, 3)}},
        )

    def test_bool(self):
        assert self.make()
        assert not MatchResult.empty()

    def test_sizes(self):
        result = self.make()
        assert result.result_size == 2
        assert result.total_node_matches() == 3

    def test_accessors(self):
        result = self.make()
        assert result.matches_of("a") == {1}
        assert result.matches_of("ghost") == set()
        assert result.edge_matches_of(("a", "b")) == {(1, 2), (1, 3)}
        assert result.edge_matches_of(("x", "y")) == set()

    def test_relation(self):
        assert self.make().as_relation() == {("a", 1), ("b", 2), ("b", 3)}

    def test_equality(self):
        assert self.make() == self.make()
        assert self.make() != MatchResult.empty()

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(self.make())

    def test_table_and_pretty(self):
        result = self.make()
        table = result.to_table()
        assert table[0][0] == ("a", "b")
        assert "a -> b" in result.pretty()

    def test_repr(self):
        assert "pairs=2" in repr(self.make())
        assert repr(MatchResult.empty()) == "MatchResult(empty)"

    def test_edge_matches_from_nodes(self):
        g = build_graph({1: "A", 2: "B", 3: "B"}, [(1, 2), (1, 3), (2, 3)])
        node_matches = {"a": {1}, "b": {2, 3}}
        em = edge_matches_from_nodes([("a", "b")], node_matches, g.successors)
        assert em[("a", "b")] == {(1, 2), (1, 3)}


class TestGraphStats:
    def test_basic(self):
        g = build_graph({1: "A", 2: "A", 3: "B"}, [(1, 2), (1, 3), (2, 3)])
        stats = graph_stats(g)
        assert stats.num_nodes == 3
        assert stats.num_edges == 3
        assert stats.size == 6
        assert stats.label_counts == {"A": 2, "B": 1}
        assert stats.max_out_degree == 2
        assert stats.max_in_degree == 2
        assert stats.avg_out_degree == pytest.approx(1.0)

    def test_empty(self):
        from repro.graph import DataGraph

        stats = graph_stats(DataGraph())
        assert stats.size == 0
        assert stats.avg_out_degree == 0.0

    def test_size_fraction(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        assert size_fraction(1, g) == pytest.approx(1 / 3)
        from repro.graph import DataGraph

        assert size_fraction(5, DataGraph()) == 0.0
