"""Thread-safety of the engine's caches and snapshot lifecycle.

The serving layer runs ``execute``/``answer_batch`` from a reader pool
while ``apply_delta`` runs on a maintenance thread -- all through one
shared :class:`QueryEngine`.  These tests hammer exactly that shape:
reader threads evaluating nonstop while the main thread applies
maintenance batches.  Nothing here asserts *which* interleaving
happened -- only that no interleaving raises, corrupts a cache, or
leaves the engine disagreeing with direct evaluation once quiescent.
"""

import random
import threading

import pytest

from helpers import build_graph, build_pattern, random_labeled_graph
from repro.engine import QueryEngine
from repro.simulation import match
from repro.views import Delta, ViewDefinition, ViewSet
from repro.views.maintenance import IncrementalViewSet


def _definitions():
    return [
        ViewDefinition("AB", build_pattern({"a": "A", "b": "B"}, [("a", "b")])),
        ViewDefinition("BC", build_pattern({"b": "B", "c": "C"}, [("b", "c")])),
        ViewDefinition(
            "ABC",
            build_pattern(
                {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
            ),
        ),
    ]


def _queries():
    return [
        build_pattern({"x": "A", "y": "B"}, [("x", "y")]),
        build_pattern({"x": "B", "y": "C"}, [("x", "y")]),
        build_pattern(
            {"x": "A", "y": "B", "z": "C"}, [("x", "y"), ("y", "z")]
        ),
    ]


def _random_delta(rng, live, size=6):
    delta = Delta()
    nodes = list(live.nodes())
    for _ in range(size):
        a, b = rng.choice(nodes), rng.choice(nodes)
        if live.has_edge(a, b):
            delta.delete(a, b)
        else:
            delta.insert(a, b)
    return delta


class TestApplyDelta:
    def test_requires_an_attached_tracker(self):
        graph = random_labeled_graph(random.Random(0), 10, 20)
        engine = QueryEngine(ViewSet(_definitions()), graph=graph)
        with pytest.raises(ValueError):
            engine.apply_delta(Delta().insert(0, 1))

    def test_applies_and_refreshes_synchronously(self):
        rng = random.Random(1)
        graph = random_labeled_graph(rng, 16, 40)
        tracker = IncrementalViewSet(_definitions(), graph)
        engine = QueryEngine(ViewSet(_definitions()), graph=graph)
        engine.attach_maintenance(tracker)
        report = engine.apply_delta(Delta().insert(100, 101).insert(100, 101))
        assert (report.applied, report.skipped) == (1, 1)
        for query in _queries():
            plan = engine.plan(query)
            assert (
                engine.execute(plan).edge_matches
                == match(query, tracker.graph).edge_matches
            )


class TestConcurrentExecute:
    @pytest.mark.parametrize("seed", range(2))
    def test_readers_hammering_through_maintenance(self, seed):
        """4 reader threads executing nonstop while the main thread
        applies 30 maintenance batches through the same engine."""
        rng = random.Random(seed)
        graph = random_labeled_graph(rng, 24, 70)
        tracker = IncrementalViewSet(_definitions(), graph)
        engine = QueryEngine(ViewSet(_definitions()), graph=graph)
        engine.attach_maintenance(tracker)
        queries = _queries()
        plans = [engine.plan(query) for query in queries]

        errors = []
        stop = threading.Event()

        def reader(worker):
            worker_rng = random.Random(1000 + worker)
            try:
                while not stop.is_set():
                    index = worker_rng.randrange(len(plans))
                    result = engine.execute(plans[index])
                    # Results must always be well-formed (never a
                    # torn/corrupt structure), whatever epoch they saw.
                    assert result.result_size >= 0
                    if worker_rng.random() < 0.25:
                        engine.answer_batch(queries)
            except BaseException as err:  # pragma: no cover - failure path
                errors.append(err)

        threads = [
            threading.Thread(target=reader, args=(worker,), daemon=True)
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(30):
                engine.apply_delta(_random_delta(rng, tracker.graph))
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
        assert not errors, errors
        assert all(not thread.is_alive() for thread in threads)

        # Quiescent: the engine agrees with direct evaluation on the
        # maintained graph, and its caches serve the same answers.
        for query in queries:
            plan = engine.plan(query)
            expected = match(query, tracker.graph).edge_matches
            assert engine.execute(plan).edge_matches == expected
            assert engine.execute(plan).edge_matches == expected  # cached

    def test_checkpoints_taken_during_maintenance_are_consistent(self):
        """checkpoint() from one thread races apply_delta from another;
        every captured checkpoint must be internally consistent (its
        extensions match a rematerialization of its own snapshot)."""
        from repro.views import materialize

        rng = random.Random(7)
        graph = random_labeled_graph(rng, 20, 50)
        definitions = _definitions()
        tracker = IncrementalViewSet(definitions, graph)
        engine = QueryEngine(ViewSet(definitions), graph=graph)
        engine.attach_maintenance(tracker)

        captured = []
        errors = []
        stop = threading.Event()

        def snapshotter():
            try:
                while not stop.is_set():
                    captured.append(engine.checkpoint())
            except BaseException as err:  # pragma: no cover - failure path
                errors.append(err)

        thread = threading.Thread(target=snapshotter, daemon=True)
        thread.start()
        try:
            for _ in range(20):
                engine.apply_delta(_random_delta(rng, tracker.graph, size=4))
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not errors, errors
        assert captured

        definitions_by_name = {d.name: d for d in definitions}
        seen_versions = set()
        for checkpoint in captured:
            key = tuple(sorted(checkpoint.view_versions.items())) + (
                checkpoint.graph_version,
            )
            if key in seen_versions:
                continue
            seen_versions.add(key)
            for name, extension in checkpoint.extensions.items():
                fresh = materialize(
                    definitions_by_name[name], checkpoint.snapshot
                )
                assert extension.edge_matches == fresh.edge_matches, name
