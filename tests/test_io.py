"""Tests for graph/pattern serialization and the SNAP reader."""

import json

import pytest

from repro.graph import ANY, BoundedPattern, DataGraph, Label, P, Pattern
from repro.graph.io import (
    condition_from_json,
    condition_to_json,
    graph_from_edges,
    graph_from_json,
    graph_to_json,
    pattern_from_json,
    pattern_to_json,
    read_graph,
    read_pattern,
    read_snap_edges,
    write_graph,
    write_pattern,
)
from repro.graph.conditions import TrueCondition


class TestConditionRoundTrip:
    @pytest.mark.parametrize(
        "cond",
        [
            TrueCondition(),
            Label("DBA"),
            P("rate") >= 4,
            ((P("C") == "Music") & (P("V") >= 10_000)).with_label("video"),
        ],
        ids=["true", "label", "atom", "conjunction"],
    )
    def test_round_trip(self, cond):
        doc = condition_to_json(cond)
        json.dumps(doc)  # must be JSON-serializable
        assert condition_from_json(doc) == cond

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            condition_from_json({"kind": "mystery"})


class TestGraphRoundTrip:
    def make(self):
        g = DataGraph()
        g.add_node("x", labels=["A", "B"], attrs={"year": 2005, "venue": "ICDE"})
        g.add_node("y", labels="C")
        g.add_edge("x", "y")
        g.add_edge("y", "x")
        return g

    def test_json_round_trip(self):
        g = self.make()
        doc = graph_to_json(g)
        json.dumps(doc)
        h = graph_from_json(doc)
        assert set(h.edges()) == set(g.edges())
        assert h.labels("x") == g.labels("x")
        assert h.attrs("x") == g.attrs("x")

    def test_file_round_trip(self, tmp_path):
        g = self.make()
        path = tmp_path / "graph.json"
        write_graph(g, path)
        h = read_graph(path)
        assert set(h.edges()) == set(g.edges())


class TestPatternRoundTrip:
    def test_plain_pattern(self, tmp_path):
        q = Pattern()
        q.add_node("a", "A")
        q.add_node("b", (P("rate") >= 4).with_label("video"))
        q.add_edge("a", "b")
        path = tmp_path / "q.json"
        write_pattern(q, path)
        r = read_pattern(path)
        assert not isinstance(r, BoundedPattern)
        assert set(r.edges()) == {("a", "b")}
        assert r.condition("b") == q.condition("b")

    def test_bounded_pattern(self, tmp_path):
        q = BoundedPattern()
        q.add_node("a", "A")
        q.add_node("b", "B")
        q.add_edge("a", "b", 3)
        q.add_node("c", "C")
        q.add_edge("b", "c", ANY)
        path = tmp_path / "qb.json"
        write_pattern(q, path)
        r = read_pattern(path)
        assert isinstance(r, BoundedPattern)
        assert r.bound(("a", "b")) == 3
        assert r.bound(("b", "c")) is ANY

    def test_tuple_node_ids_round_trip(self, tmp_path):
        # query_from_views names nodes (copy, node) -- and stacking
        # generators can nest further.  JSON turns tuples into lists,
        # and the reader must restore them recursively.
        q = Pattern()
        q.add_node(("c0", "a"), "A")
        q.add_node(("c0", ("c1", "b")), "B")
        q.add_edge(("c0", "a"), ("c0", ("c1", "b")))
        path = tmp_path / "qt.json"
        write_pattern(q, path)
        r = read_pattern(path)
        assert set(r.edges()) == {(("c0", "a"), ("c0", ("c1", "b")))}

        qb = BoundedPattern()
        qb.add_node(("c0", "a"), "A")
        qb.add_node(("c0", "b"), "B")
        qb.add_edge(("c0", "a"), ("c0", "b"), 2)
        write_pattern(qb, path)
        rb = read_pattern(path)
        assert isinstance(rb, BoundedPattern)
        assert rb.bound(((("c0", "a")), ("c0", "b"))) == 2


class TestSnapReader:
    def test_reads_edge_list(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text(
            "# Directed graph\n"
            "# FromNodeId\tToNodeId\n"
            "0\t1\n"
            "0\t2\n"
            "1\t2\n"
        )
        edges = read_snap_edges(path)
        # streaming: a generator, not a list (multi-GB files must flow)
        assert iter(edges) is edges
        assert list(edges) == [("0", "1"), ("0", "2"), ("1", "2")]

    def test_limit(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("0 1\n1 2\n2 3\n")
        assert len(list(read_snap_edges(path, limit=2))) == 2

    def test_max_edges_guard(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("0 1\n1 2\n2 3\n")
        assert len(list(read_snap_edges(path, max_edges=3))) == 3
        with pytest.raises(ValueError, match="max_edges"):
            list(read_snap_edges(path, max_edges=2))

    def test_graph_from_edges_with_labeler(self):
        edges = [("0", "1"), ("1", "2")]
        g = graph_from_edges(edges, labeler=lambda n: "even" if int(n) % 2 == 0 else "odd")
        assert g.num_edges == 2
        assert g.labels("0") == frozenset({"even"})
        assert g.labels("1") == frozenset({"odd"})

    def test_graph_from_edges_streams_generators(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("0 1\n1 2\n2 3\n")
        g = graph_from_edges(read_snap_edges(path))
        assert g.num_edges == 3

    def test_graph_from_edges_max_edges_guard(self):
        edges = [("0", "1"), ("1", "2"), ("2", "3")]
        assert graph_from_edges(edges, max_edges=3).num_edges == 3
        with pytest.raises(ValueError, match="repro ingest"):
            graph_from_edges(edges, max_edges=2)
