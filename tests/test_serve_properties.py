"""Property-based serving-layer concurrency (hypothesis).

The serving contract quantified over random graphs, view suites, query
mixes and maintenance streams: when queries and :class:`Delta` batches
interleave freely, **every answer equals direct evaluation on the graph
of the epoch it was served from**, and that epoch lies between the
current epoch at request start and at request completion.  No answer is
ever torn across epochs -- a reader racing an update is served from one
consistent generation, never a mixture.

The per-epoch reference graphs are built by replaying the same delta
stream over copies of the base graph *before* serving starts, so the
oracle is independent of every engine/serving code path under test.
"""

import asyncio
import random

from hypothesis import given, settings, strategies as st

from helpers import random_labeled_graph, random_pattern
from repro.engine import QueryEngine
from repro.serve import QueryServer
from repro.simulation import match
from repro.views import Delta, ViewDefinition, ViewSet
from repro.views.maintenance import IncrementalViewSet

seeds = st.integers(min_value=0, max_value=10_000)


def make_workload(seed: int):
    """A random instance: base graph, view suite, query mix, deltas,
    and the per-epoch reference graphs ``graphs[i]`` = base + deltas
    ``1..i`` (skip semantics, same as the maintenance pipeline)."""
    rng = random.Random(seed)
    graph = random_labeled_graph(rng, rng.randint(8, 24), rng.randint(12, 60))
    definitions = [
        ViewDefinition(f"v{i}", random_pattern(rng, rng.randint(2, 4), rng.randint(1, 4)))
        for i in range(rng.randint(1, 3))
    ]
    queries = [
        random_pattern(rng, rng.randint(2, 4), rng.randint(1, 4))
        for _ in range(rng.randint(2, 4))
    ]
    num_nodes = len(graph)
    deltas = []
    for _ in range(rng.randint(2, 5)):
        delta = Delta()
        for _ in range(rng.randint(1, 6)):
            a = rng.randrange(num_nodes)
            b = rng.randrange(num_nodes)
            if rng.random() < 0.4:
                delta.delete(a, b)
            else:
                delta.insert(a, b)
        deltas.append(delta)
    graphs = [graph.copy()]
    for delta in deltas:
        reference = graphs[-1].copy()
        reference.apply_delta(delta)
        graphs.append(reference)
    return graph, definitions, queries, deltas, graphs


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_every_answer_is_consistent_with_some_bracketed_epoch(seed):
    graph, definitions, queries, deltas, graphs = make_workload(seed)
    tracker = IncrementalViewSet(definitions, graph)
    engine = QueryEngine(ViewSet(definitions), graph=graph)
    engine.attach_maintenance(tracker)

    observations = []

    async def run():
        async with QueryServer(engine, max_inflight=4, max_queue=32) as server:
            async def reader(rng_seed):
                rng = random.Random(rng_seed)
                for _ in range(6):
                    pattern = rng.choice(queries)
                    started_on = server.current_epoch
                    answer = await server.query(pattern)
                    finished_on = server.current_epoch
                    observations.append(
                        (pattern, answer, started_on, finished_on)
                    )
                    await asyncio.sleep(0)

            async def updater():
                for delta in deltas:
                    await server.update(delta)
                    await asyncio.sleep(0)

            await asyncio.gather(
                *(reader(seed * 31 + i) for i in range(3)), updater()
            )
            assert server.current_epoch == len(deltas)

    asyncio.run(run())

    assert observations
    for pattern, answer, started_on, finished_on in observations:
        # The serving contract: an answer names the epoch it pinned,
        # which is bracketed by the epochs observed around the await.
        assert started_on <= answer.epoch <= finished_on
        # Equality on the paper's Match result {(e, Se)} -- the same
        # comparison Theorem 1 is tested with (sink-node simulation
        # sets may legitimately differ between MatchJoin and direct).
        expected = match(pattern, graphs[answer.epoch])
        assert answer.result.edge_matches == expected.edge_matches, (
            seed,
            answer.epoch,
        )
