"""Tests for the end-to-end Answer pipeline (repro.core.answer)."""

import pytest

from repro import answer_with_views, bounded_match, match
from repro.core.answer import Answer
from repro.errors import NotContainedError, NotMaterializedError
from repro.views import ViewDefinition, ViewSet

from helpers import build_bounded, build_graph, build_pattern


def make_setup():
    g = build_graph(
        {1: "A", 2: "B", 3: "C", 4: "B"},
        [(1, 2), (2, 3), (1, 4), (4, 3)],
    )
    q = build_pattern(
        {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
    )
    views = ViewSet(
        [
            ViewDefinition("Vab", q.subpattern([("a", "b")])),
            ViewDefinition("Vbc", q.subpattern([("b", "c")])),
            ViewDefinition("Vunused", build_pattern({"x": "C", "y": "B"}, [("x", "y")])),
        ]
    )
    return g, q, views


class TestProvenance:
    def test_answer_fields(self):
        g, q, views = make_setup()
        views.materialize(g)
        answer = answer_with_views(q, views)
        assert isinstance(answer, Answer)
        assert bool(answer)
        assert set(answer.views_used) == {"Vab", "Vbc"}
        assert answer.extension_size > 0
        assert answer.containment.holds

    def test_unused_views_not_materialized_on_demand(self):
        g, q, views = make_setup()
        answer = answer_with_views(q, views, graph=g)
        assert answer.result.edge_matches == match(q, g).edge_matches
        # Only the needed views were materialized.
        assert views.is_materialized("Vab")
        assert views.is_materialized("Vbc")
        assert not views.is_materialized("Vunused")

    def test_missing_extension_without_graph(self):
        g, q, views = make_setup()
        with pytest.raises((NotMaterializedError, KeyError)):
            answer_with_views(q, views)

    def test_not_contained_error_carries_edges(self):
        g, q, views = make_setup()
        sub = views.subset(["Vab"])
        with pytest.raises(NotContainedError) as err:
            answer_with_views(q, sub, graph=g)
        assert ("b", "c") in err.value.uncovered

    def test_empty_result_is_falsy(self):
        g, q, views = make_setup()
        g2 = build_graph({1: "A", 2: "B"}, [(1, 2)])  # no C at all
        views2 = ViewSet([views.definition("Vab"), views.definition("Vbc")])
        views2.materialize(g2)
        answer = answer_with_views(q, views2, graph=g2)
        assert not answer
        assert answer.result.result_size == 0


class TestDispatch:
    def test_optimized_flag_forwarded(self):
        g, q, views = make_setup()
        views.materialize(g)
        fast = answer_with_views(q, views, optimized=True)
        slow = answer_with_views(q, views, optimized=False)
        assert fast.result.edge_matches == slow.result.edge_matches

    def test_bounded_query_dispatch(self):
        g = build_graph({1: "A", 2: "X", 3: "B"}, [(1, 2), (2, 3)])
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
        views = ViewSet(
            [ViewDefinition("V", build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)]))]
        )
        answer = answer_with_views(q, views, graph=g)
        assert answer.result.edge_matches == bounded_match(q, g).edge_matches

    def test_plain_query_bounded_views_dispatch(self):
        """A plain query over a bounded view cache goes through the
        bounded machinery with promoted bounds."""
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        views = ViewSet(
            [ViewDefinition("V", build_bounded({"a": "A", "b": "B"}, [("a", "b", 3)]))]
        )
        answer = answer_with_views(q, views, graph=g)
        assert answer.result.edge_matches == {("a", "b"): {(1, 2)}}

    @pytest.mark.parametrize("selection", ["all", "minimal", "minimum"])
    def test_selection_strategies_same_answer(self, selection):
        g, q, views = make_setup()
        answer = answer_with_views(q, views, graph=g, selection=selection)
        assert answer.result.edge_matches == match(q, g).edge_matches

    def test_unknown_selection_rejected(self):
        g, q, views = make_setup()
        with pytest.raises(ValueError):
            answer_with_views(q, views, graph=g, selection="best")
