"""Edge-case tests for the named view shapes and pattern generators."""

import pytest

from repro.datasets.patterns import (
    chain_view,
    cycle_view,
    diamond_view,
    star_view,
)
from repro.graph import ANY, BoundedPattern


class TestShapeHelpers:
    def test_chain_plain(self):
        view = chain_view("c", ["A", "B", "C"])
        assert view.pattern.num_nodes == 3
        assert view.pattern.num_edges == 2
        assert not view.is_bounded

    def test_chain_bounded(self):
        view = chain_view("c", ["A", "B"], bounds=[3])
        assert view.is_bounded
        assert view.pattern.bound(("n0", "n1")) == 3

    def test_chain_too_short(self):
        with pytest.raises(ValueError):
            chain_view("c", ["A"])

    def test_star(self):
        view = star_view("s", "A", ["B", "C", "D"])
        assert view.pattern.num_edges == 3
        assert view.pattern.out_edges("c")

    def test_star_bounded(self):
        view = star_view("s", "A", ["B", "C"], bounds=[1, ANY])
        assert view.pattern.bound(("c", "leaf1")) is ANY

    def test_cycle(self):
        view = cycle_view("y", ["A", "B", "C"])
        pattern = view.pattern
        assert pattern.num_edges == 3
        # Every node has in- and out-degree 1.
        for node in pattern.nodes():
            assert len(pattern.successors(node)) == 1
            assert len(pattern.predecessors(node)) == 1

    def test_cycle_too_short(self):
        with pytest.raises(ValueError):
            cycle_view("y", ["A"])

    def test_diamond(self):
        view = diamond_view("d", "A", "B", "C", "D")
        pattern = view.pattern
        assert pattern.num_nodes == 4
        assert pattern.num_edges == 4
        assert pattern.successors("t") == {"l", "r"}
        assert pattern.predecessors("b") == {"l", "r"}

    def test_shapes_accept_condition_objects(self):
        from repro.graph import P

        cond = (P("rating") >= 4).with_label("Book")
        view = chain_view("c", [cond, cond])
        assert view.pattern.condition("n0") == cond


class TestQueryFromViewsMergeSemantics:
    def test_merged_bounded_edges_keep_tighter_bound(self):
        """When two copies collapse onto the same edge the tighter bound
        survives (coverage stays per-edge exact)."""
        from repro.datasets.patterns import _merged_pattern

        q = BoundedPattern()
        q.add_node("x1", "X")
        q.add_node("x2", "X")
        q.add_node("y", "Y")
        q.add_edge("x1", "y", 2)
        q.add_edge("x2", "y", 5)
        merged = _merged_pattern(q, "x1", "x2")
        assert merged.num_nodes == 2
        assert merged.bound(("x1", "y")) == 2

    def test_merge_maps_edges_through_survivor(self):
        from repro.datasets.patterns import _merged_pattern

        q = BoundedPattern()
        q.add_node("a", "A")
        q.add_node("b1", "B")
        q.add_node("b2", "B")
        q.add_node("c", "C")
        q.add_edge("a", "b1", 1)
        q.add_edge("b2", "c", 3)
        merged = _merged_pattern(q, "b1", "b2")
        assert merged.has_edge("a", "b1")
        assert merged.has_edge("b1", "c")
        assert merged.bound(("b1", "c")) == 3
