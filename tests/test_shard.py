"""The sharded backend: partitioners, ShardedGraph, psim, materialization.

Covers the whole subsystem:

* every partitioner assigns every node exactly once and reports honest
  cut/balance statistics;
* ``ShardedGraph`` mirrors the ``DataGraph`` read API over original
  node keys (randomized equivalence, including cross-shard
  predecessors and BFS);
* the property-based equivalence suite -- for random graphs, patterns
  and *every* partitioner, partial-evaluation simulation,
  ``sharded_match``, materialized extensions and ``match_join`` answers
  are identical to the single-``CompactGraph`` results;
* executor variants (serial / thread / process) agree;
* the ``QueryEngine`` shards mode plans, answers, caches and
  invalidates exactly like the single-snapshot engine.
"""

import random

import pytest

from helpers import (
    build_graph,
    build_pattern,
    random_labeled_graph,
    random_pattern,
)
from repro.core.containment import contains
from repro.core.matchjoin import _compact_match_join, match_join
from repro.datasets import generate_views, query_from_views, random_graph
from repro.engine import QueryEngine
from repro.graph import DataGraph, P
from repro.shard import (
    PARTITIONERS,
    Partition,
    ShardRunner,
    ShardedGraph,
    make_partition,
    materialize_view,
    parallel_materialize,
    partial_max_simulation,
    sharded_match,
)
from repro.simulation import bounded_match, dual_match, match
from repro.simulation.simulation import maximum_simulation
from repro.views.maintenance import IncrementalViewSet
from repro.views.storage import ViewSet
from repro.views.view import ViewDefinition

STRATEGIES = sorted(PARTITIONERS)


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
class TestPartitioner:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_node_assigned_exactly_once(self, strategy):
        rng = random.Random(3)
        for _ in range(10):
            g = random_labeled_graph(rng, rng.randint(1, 60), rng.randint(0, 150))
            k = rng.randint(1, 6)
            partition = make_partition(g, k, strategy)
            assert partition.num_shards == k
            seen = set()
            for i in range(k):
                shard_nodes = partition.nodes_of(i)
                assert seen.isdisjoint(shard_nodes)
                seen.update(shard_nodes)
                for node in shard_nodes:
                    assert partition.shard_of(node) == i
            assert seen == set(g.nodes())
            assert sum(partition.shard_sizes) == len(g)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_cut_accounting(self, strategy):
        rng = random.Random(5)
        for _ in range(10):
            g = random_labeled_graph(rng, rng.randint(2, 50), rng.randint(1, 120))
            partition = make_partition(g, rng.randint(2, 5), strategy)
            cut = {
                (s, t)
                for s, t in g.edges()
                if partition.shard_of(s) != partition.shard_of(t)
            }
            assert set(partition.cross_edges) == cut
            assert partition.edge_cut == len(cut)
            assert 0.0 <= partition.edge_cut_fraction <= 1.0
            boundary = {t for _, t in cut}
            assert partition.boundary_nodes == boundary
            for i in range(partition.num_shards):
                assert partition.ghosts_of(i) == {
                    t for s, t in cut if partition.shard_of(s) == i
                }

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_deterministic(self, strategy):
        g = random_labeled_graph(random.Random(9), 40, 100)
        first = make_partition(g, 3, strategy)
        second = make_partition(g, 3, strategy)
        assert first.assignment == second.assignment

    def test_balance_of_structured_strategies(self):
        g = random_labeled_graph(random.Random(11), 80, 200)
        for strategy in ("label", "bfs"):
            partition = make_partition(g, 4, strategy)
            # Capacity-driven strategies stay within one block of ideal.
            assert max(partition.shard_sizes) <= -(-80 // 4) + 1

    def test_more_shards_than_nodes(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        for strategy in STRATEGIES:
            partition = make_partition(g, 5, strategy)
            assert sum(partition.shard_sizes) == 2
            sharded = ShardedGraph(g, partition)  # empty shards tolerated
            assert match(build_pattern({"a": "A", "b": "B"}, [("a", "b")]), sharded)

    def test_rejects_bad_arguments(self):
        g = build_graph({1: "A"}, [])
        with pytest.raises(ValueError):
            make_partition(g, 0)
        with pytest.raises(ValueError):
            make_partition(g, 2, "metis")

    def test_stats_payload(self):
        g = random_labeled_graph(random.Random(2), 30, 80)
        stats = make_partition(g, 3, "hash").stats()
        assert stats["strategy"] == "hash"
        assert stats["shards"] == 3
        assert len(stats["sizes"]) == 3
        assert stats["edge_cut"] <= g.num_edges
        assert 0.0 <= stats["edge_cut_fraction"] <= 1.0


# ----------------------------------------------------------------------
# ShardedGraph read API mirrors DataGraph
# ----------------------------------------------------------------------
class TestShardedGraphApi:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_read_api_equivalence_randomized(self, strategy):
        rng = random.Random(13)
        for _ in range(8):
            g = random_labeled_graph(rng, rng.randint(1, 35), rng.randint(0, 80))
            sharded = ShardedGraph(g, make_partition(g, rng.randint(1, 4), strategy))
            assert sharded.freeze() is sharded
            assert len(sharded) == len(g)
            assert sharded.num_edges == g.num_edges
            assert sharded.size == g.size
            assert set(sharded.nodes()) == set(g.nodes())
            assert sorted(sharded.edges(), key=repr) == sorted(g.edges(), key=repr)
            for v in g.nodes():
                assert v in sharded
                assert sharded.successors(v) == g.successors(v)
                assert sharded.predecessors(v) == g.predecessors(v)
                assert sharded.out_degree(v) == g.out_degree(v)
                assert sharded.in_degree(v) == g.in_degree(v)
                assert sharded.labels(v) == g.labels(v)
                assert sharded.attrs(v) == g.attrs(v)
                assert sharded.node_of(sharded.id_of(v)) == v
                bound = rng.randint(1, 4)
                assert sharded.descendants_within(v, bound) == (
                    g.descendants_within(v, bound)
                )
            for label in "ABC":
                assert set(sharded.nodes_with_label(label)) == set(
                    g.nodes_with_label(label)
                )
            assert sharded.label_index_stats() == g.label_index_stats()
            assert 99_999 not in sharded
            assert not sharded.has_edge(99_999, 0)

    def test_composite_id_space_is_dense_and_shard_major(self):
        g = random_labeled_graph(random.Random(17), 30, 70)
        sharded = ShardedGraph(g, make_partition(g, 3, "hash"))
        assert sorted(sharded.id_of(v) for v in g.nodes()) == list(range(len(g)))
        # Own nodes precede ghosts in every shard's local id space.
        for i in range(sharded.num_shards):
            own = sharded.own_count(i)
            snapshot = sharded.shard(i)
            for node, local_id in sharded.ghost_ids(i).items():
                assert local_id >= own
                # Ghost translation points at the owner's global id.
                assert sharded.global_row(i)[local_id] == sharded.id_of(node)
            for local_id in range(own):
                assert sharded.global_row(i)[local_id] == sharded.id_of(
                    snapshot.node_of(local_id)
                )

    def test_isolated_from_later_mutations(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        sharded = ShardedGraph(g, make_partition(g, 2))
        g.add_node(3, labels="B")
        g.add_edge(2, 3)
        assert 3 not in sharded
        assert sharded.num_edges == 1
        assert set(sharded.nodes_with_label("B")) == {2}

    def test_pickles(self):
        import pickle

        g = random_labeled_graph(random.Random(19), 25, 60)
        sharded = ShardedGraph(g, make_partition(g, 3, "bfs"))
        revived = pickle.loads(pickle.dumps(sharded))
        assert revived.snapshot_token == sharded.snapshot_token
        assert set(revived.nodes()) == set(sharded.nodes())
        q = random_pattern(random.Random(1), 3, 4)
        assert match(q, revived) == match(q, sharded)


# ----------------------------------------------------------------------
# Partial-evaluation simulation == single-machine simulation
# ----------------------------------------------------------------------
class TestPsimEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_randomized_equivalence(self, strategy):
        rng = random.Random(23)
        for _ in range(40):
            g = random_labeled_graph(rng, rng.randint(2, 40), rng.randint(1, 100))
            q = random_pattern(rng, rng.randint(2, 6), rng.randint(1, 10))
            sharded = ShardedGraph(
                g, make_partition(g, rng.randint(1, 5), strategy)
            )
            assert partial_max_simulation(q, sharded) == maximum_simulation(q, g)
            assert sharded_match(q, sharded) == match(q, g)
            # The generic dispatch in match() takes the psim path too.
            assert match(q, sharded) == match(q, g)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_self_loops_randomized(self, strategy):
        rng = random.Random(29)
        for _ in range(20):
            g = random_labeled_graph(rng, rng.randint(2, 25), rng.randint(1, 60))
            q = random_pattern(rng, rng.randint(2, 5), rng.randint(1, 8))
            for node in rng.sample(list(q.nodes()), rng.randint(1, 2)):
                q.add_edge(node, node)
            for node in rng.sample(list(g.nodes()), min(3, len(g))):
                g.add_edge(node, node)
            sharded = ShardedGraph(g, make_partition(g, rng.randint(2, 4), strategy))
            assert sharded_match(q, sharded) == match(q, g)

    def test_attribute_conditions(self):
        rng = random.Random(31)
        for _ in range(10):
            g = DataGraph()
            n = rng.randint(4, 30)
            for i in range(n):
                g.add_node(
                    i, labels=rng.choice("AB"), attrs={"score": rng.randint(0, 10)}
                )
            for _ in range(rng.randint(3, 60)):
                g.add_edge(rng.randrange(n), rng.randrange(n))
            q = build_pattern({}, [])
            q.add_node("hi", (P("score") >= 5).with_label("A"))
            q.add_node("any", rng.choice("AB"))
            q.add_edge("hi", "any")
            sharded = ShardedGraph(g, make_partition(g, 3, rng.choice(STRATEGIES)))
            assert match(q, sharded) == match(q, g)

    def test_no_match_returns_empty(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        sharded = ShardedGraph(g, make_partition(g, 2))
        q = build_pattern({"b": "B", "a": "A"}, [("b", "a")])
        assert partial_max_simulation(q, sharded) is None
        assert not sharded_match(q, sharded)

    def test_cross_shard_cascade(self):
        # A chain split across shards: invalidation must travel through
        # the coordinator (shard of 1 learns about 3's failure only via
        # withdrawn assumptions on ghost 2).
        g = build_graph({1: "A", 2: "B", 3: "C", 4: "D"}, [(1, 2), (2, 3)])
        q = build_pattern(
            {"a": "A", "b": "B", "c": "C", "d": "D"},
            [("a", "b"), ("b", "c"), ("c", "d")],
        )
        assignment = {1: 0, 2: 1, 3: 0, 4: 1}
        sharded = ShardedGraph(g, Partition(g, assignment, 2, "manual"))
        assert partial_max_simulation(q, sharded) is None
        assert match(q, g) == sharded_match(q, sharded)

    def test_executors_agree(self):
        rng = random.Random(37)
        g = random_labeled_graph(rng, 40, 120)
        sharded = ShardedGraph(g, make_partition(g, 3, "hash"))
        q = random_pattern(rng, 4, 7)
        expect = sharded_match(q, sharded, executor="serial")
        assert sharded_match(q, sharded, executor="thread", workers=3) == expect
        assert sharded_match(q, sharded, executor="process", workers=2) == expect

    def test_runner_rejects_foreign_graph(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        other = ShardedGraph(g, make_partition(g, 2))
        sharded = ShardedGraph(g, make_partition(g, 2))
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        with ShardRunner(other) as runner:
            with pytest.raises(ValueError):
                sharded_match(q, sharded, runner=runner)
        with pytest.raises(ValueError):
            ShardRunner(sharded, executor="bogus")


# ----------------------------------------------------------------------
# Materialization: merged extensions == single-snapshot extensions
# ----------------------------------------------------------------------
class TestShardedMaterialize:
    def _suite(self, seed, num_shards, strategy):
        labels = tuple(f"l{i}" for i in range(6))
        graph = random_graph(150, 400, labels=labels, seed=seed)
        definitions = list(generate_views(labels, 8, seed=seed))
        frozen_views = ViewSet(definitions)
        frozen_views.materialize(graph.freeze())
        sharded = ShardedGraph(graph, make_partition(graph, num_shards, strategy))
        return graph, definitions, frozen_views, sharded

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_extensions_match_single_snapshot(self, strategy):
        graph, definitions, frozen_views, sharded = self._suite(3, 4, strategy)
        views = ViewSet(definitions)
        views.materialize(sharded)
        assert views.snapshot_token == sharded.snapshot_token
        for name in views.names():
            extension = views.extension(name)
            assert extension.edge_matches == frozen_views.extension(name).edge_matches
            assert extension.compact is not None
            assert extension.compact.token == sharded.snapshot_token
            assert extension.compact.version == sharded.snapshot_version

    def test_matchjoin_fast_path_engages_and_agrees(self):
        graph, definitions, frozen_views, sharded = self._suite(5, 3, "hash")
        views = ViewSet(definitions)
        views.materialize(sharded)
        for qseed in range(4):
            query = query_from_views(views, 4, 6, seed=qseed)
            containment = contains(query, views)
            assert containment.holds
            assert (
                _compact_match_join(query, containment, views.extensions())
                is not None
            )
            result = match_join(query, containment, views)
            assert result == match_join(query, containment, frozen_views)
            assert result.edge_matches == match(query, graph).edge_matches

    def test_parallel_materialize_thread_and_process(self):
        _, definitions, frozen_views, sharded = self._suite(7, 4, "bfs")
        for executor in ("serial", "thread", "process"):
            views = ViewSet(definitions)
            parallel_materialize(views, sharded, executor=executor, workers=2)
            for name in views.names():
                assert (
                    views.extension(name).edge_matches
                    == frozen_views.extension(name).edge_matches
                )
                assert views.extension(name).compact.token == sharded.snapshot_token

    def test_parallel_materialize_subset_and_shared_runner(self):
        _, definitions, frozen_views, sharded = self._suite(9, 2, "label")
        views = ViewSet(definitions)
        chosen = views.names()[:3]
        with ShardRunner(sharded, executor="thread", workers=2) as runner:
            parallel_materialize(views, sharded, names=chosen, runner=runner)
        for name in views.names():
            assert views.is_materialized(name) == (name in chosen)
        assert views.snapshot_token == sharded.snapshot_token

    def test_empty_view_extension(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        sharded = ShardedGraph(g, make_partition(g, 2))
        definition = ViewDefinition(
            "void", build_pattern({"b": "B", "a": "A"}, [("b", "a")])
        )
        extension = materialize_view(definition, sharded)
        assert extension.is_empty
        assert extension.compact is not None
        assert extension.compact.token == sharded.snapshot_token

    def test_bounded_views_fall_back_to_generic_engine(self):
        from helpers import build_bounded

        g = build_graph(
            {1: "A", 2: "B", 3: "C"}, [(1, 2), (2, 3)]
        )
        sharded = ShardedGraph(g, make_partition(g, 2))
        definition = ViewDefinition(
            "hop2", build_bounded({"a": "A", "c": "C"}, [("a", "c", 2)])
        )
        via_sharded = materialize_view(definition, sharded)
        via_graph_views = ViewSet([definition])
        via_graph_views.materialize(g)
        assert via_sharded.edge_matches == via_graph_views.extension("hop2").edge_matches
        assert via_sharded.distances == via_graph_views.extension("hop2").distances
        # Bounded match agrees on the sharded read API too.
        assert bounded_match(definition.pattern, sharded) == bounded_match(
            definition.pattern, g
        )

    def test_generic_engines_run_on_sharded_graphs(self):
        rng = random.Random(41)
        g = random_labeled_graph(rng, 25, 60)
        q = random_pattern(rng, 3, 5)
        sharded = ShardedGraph(g, make_partition(g, 3, "bfs"))
        assert dual_match(q, sharded) == dual_match(q, g)


# ----------------------------------------------------------------------
# QueryEngine shards mode
# ----------------------------------------------------------------------
class TestEngineSharded:
    @pytest.fixture
    def workload(self):
        labels = tuple(f"l{i}" for i in range(6))
        graph = random_graph(150, 400, labels=labels, seed=8)
        definitions = list(generate_views(labels, 8, seed=8))
        queries = [
            query_from_views(ViewSet(definitions), 4, 6, seed=s) for s in range(4)
        ]
        return graph, definitions, queries

    def test_answers_equal_single_snapshot_engine(self, workload):
        graph, definitions, queries = workload
        plain = QueryEngine(ViewSet(definitions), graph=graph)
        sharded = QueryEngine(
            ViewSet(definitions), graph=graph, shards=3, partitioner="bfs"
        )
        assert isinstance(sharded.snapshot(), ShardedGraph)
        for a, b, q in zip(
            plain.answer_batch(queries), sharded.answer_batch(queries), queries
        ):
            assert a == b
            assert a.edge_matches == match(q, graph).edge_matches
        # On-demand extensions are bound to the composite snapshot.
        assert sharded.views.snapshot_token == sharded.snapshot().snapshot_token
        # Warm cache serves the repeat.
        assert all(r.stats.cache_hit for r in sharded.answer_batch(queries))

    def test_snapshot_partitioned_once_and_follows_mutations(self, workload):
        graph, definitions, _ = workload
        engine = QueryEngine(ViewSet(definitions), graph=graph, shards=2)
        first = engine.snapshot()
        assert engine.snapshot() is first
        graph.add_node("fresh", labels="l0")
        second = engine.snapshot()
        assert second is not first
        assert second.snapshot_version == graph.version
        assert "fresh" in second

    def test_maintenance_event_refreshes_sharded_snapshot(self, workload):
        graph, definitions, _ = workload
        tracker = IncrementalViewSet(definitions[:2], graph)
        engine = QueryEngine(ViewSet(definitions[:2]), graph=graph, shards=2)
        engine.attach_maintenance(tracker)
        first = engine.snapshot()
        assert isinstance(first, ShardedGraph)
        nodes = list(tracker.graph.nodes())
        source = next(
            node for node in nodes
            if not tracker.graph.has_edge(node, nodes[0])
        )
        tracker.insert_edge(source, nodes[0])
        second = engine.snapshot()
        # Refreshed -- only the shard owning the new edge's source is
        # rebuilt, the other is reused by reference, and the composite
        # token chains to the previous snapshot.
        assert isinstance(second, ShardedGraph)
        assert second is not first
        assert second.extends_token == first.snapshot_token
        touched = second.partition.shard_of(source)
        for index in range(second.num_shards):
            if index != touched:
                assert second.shard(index) is first.shard(index)
        assert second.has_edge(source, nodes[0])

    def test_direct_fallback_runs_psim(self, workload):
        graph, definitions, _ = workload
        engine = QueryEngine(ViewSet(definitions), graph=graph, shards=3)
        # A query over a label no view covers: planner goes direct.
        uncovered = build_pattern({"x": "l0", "y": "l1"}, [("x", "y")])
        plan = engine.plan(uncovered)
        result = engine.execute(plan)
        assert result.edge_matches == match(uncovered, graph).edge_matches

    def test_shards_one_is_honored(self, workload):
        graph, definitions, queries = workload
        engine = QueryEngine(ViewSet(definitions), graph=graph, shards=1)
        snapshot = engine.snapshot()
        assert isinstance(snapshot, ShardedGraph)
        assert snapshot.num_shards == 1
        result = engine.answer(queries[0])
        assert result.edge_matches == match(queries[0], graph).edge_matches

    def test_rejects_bad_shard_arguments(self, workload):
        graph, definitions, _ = workload
        with pytest.raises(ValueError):
            QueryEngine(ViewSet(definitions), graph=graph, shards=0)
        with pytest.raises(ValueError):
            QueryEngine(
                ViewSet(definitions), graph=graph, shards=2, partitioner="metis"
            )
