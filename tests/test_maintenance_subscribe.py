"""MaintenanceEvent delivery: ordering and consistency under bursts.

``IncrementalViewSet.subscribe`` promises that callbacks fire *after*
the view state is consistent again, in subscription order, once per
applied update.  These tests drive interleaved insert/delete bursts
and verify, from inside the callbacks themselves, that

* events arrive in exact application order, to every subscriber, with
  all subscribers notified of event *n* before any sees event *n + 1*;
* a subscriber reading ``tracker.extension(name)`` mid-burst observes
  extensions identical to a from-scratch materialization of the graph
  state at that event -- never a half-updated cascade;
* unsubscribing mid-burst stops delivery immediately without
  disturbing other subscribers.
"""

import random

from helpers import build_graph, build_pattern, random_labeled_graph
from repro.views.maintenance import IncrementalViewSet, MaintenanceEvent
from repro.views.storage import ViewSet
from repro.views.view import ViewDefinition


def _definitions():
    v1 = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
    v2 = build_pattern({"b": "B", "c": "C"}, [("b", "c")])
    v3 = build_pattern({"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")])
    return [
        ViewDefinition("AB", v1),
        ViewDefinition("BC", v2),
        ViewDefinition("ABC", v3),
    ]


def _burst(rng, graph, rounds):
    """A deterministic interleaved insert/delete schedule: each entry is
    ``(op, source, target)``, valid against the evolving graph."""
    nodes = list(graph.nodes())
    present = set(graph.edges())
    schedule = []
    for _ in range(rounds):
        if present and rng.random() < 0.45:
            edge = rng.choice(sorted(present, key=repr))
            schedule.append(("delete", *edge))
            present.discard(edge)
        else:
            source, target = rng.choice(nodes), rng.choice(nodes)
            if (source, target) in present:
                continue
            schedule.append(("insert", source, target))
            present.add((source, target))
    return schedule


class TestSubscriberOrdering:
    def test_events_in_application_order_across_subscribers(self):
        rng = random.Random(7)
        graph = random_labeled_graph(rng, 20, 40)
        tracker = IncrementalViewSet(_definitions(), graph)
        log = []
        tracker.subscribe(lambda event: log.append(("first", event)))
        tracker.subscribe(lambda event: log.append(("second", event)))
        schedule = _burst(rng, graph, 30)
        for op, source, target in schedule:
            if op == "insert":
                tracker.insert_edge(source, target)
            else:
                tracker.delete_edge(source, target)
        expected = [MaintenanceEvent(op, s, t) for op, s, t in schedule]
        # Both subscribers saw every event, in application order, and
        # for each event "first" fired before "second".
        assert [e for who, e in log if who == "first"] == expected
        assert [e for who, e in log if who == "second"] == expected
        assert [who for who, _ in log] == ["first", "second"] * len(expected)

    def test_subscribers_observe_consistent_extensions(self):
        rng = random.Random(11)
        graph = random_labeled_graph(rng, 18, 35)
        definitions = _definitions()
        tracker = IncrementalViewSet(definitions, graph)
        # The subscriber maintains its own mirror of the graph and, on
        # every event, compares the tracker's incrementally maintained
        # extensions against a from-scratch materialization.
        mirror = graph.copy()
        checked = []

        def verify(event):
            if event.op == "insert":
                mirror.add_edge(event.source, event.target)
            else:
                mirror.remove_edge(event.source, event.target)
            reference = ViewSet(definitions)
            reference.materialize(mirror)
            for definition in definitions:
                assert (
                    tracker.extension(definition.name).edge_matches
                    == reference.extension(definition.name).edge_matches
                ), (event, definition.name)
            checked.append(event)

        tracker.subscribe(verify)
        for op, source, target in _burst(rng, graph, 40):
            if op == "insert":
                tracker.insert_edge(source, target)
            else:
                tracker.delete_edge(source, target)
        assert len(checked) >= 30  # the burst actually exercised the hook

    def test_unsubscribe_mid_burst(self):
        graph = build_graph(
            {1: "A", 2: "B", 3: "C", 4: "B"}, [(1, 2), (2, 3)]
        )
        tracker = IncrementalViewSet(_definitions(), graph)
        first, second = [], []

        def leaver(event):
            first.append(event)
            if len(first) == 2:
                tracker.unsubscribe(leaver)

        tracker.subscribe(leaver)
        tracker.subscribe(second.append)
        tracker.insert_edge(1, 4)
        tracker.delete_edge(2, 3)
        tracker.insert_edge(4, 3)
        assert len(first) == 2  # nothing after self-unsubscribe
        assert [e.op for e in second] == ["insert", "delete", "insert"]
        # Duplicate subscribe is a no-op: still one delivery per event.
        tracker.subscribe(second.append)
        tracker.subscribe(second.append)
        tracker.delete_edge(1, 4)
        assert [e.op for e in second] == ["insert", "delete", "insert", "delete"]

    def test_duplicate_insert_fires_no_event(self):
        graph = build_graph({1: "A", 2: "B"}, [(1, 2)])
        tracker = IncrementalViewSet(_definitions(), graph)
        events = []
        tracker.subscribe(events.append)
        tracker.insert_edge(1, 2)  # already present: no state change
        assert events == []
        tracker.insert_edge(2, 1)
        assert [e.op for e in events] == ["insert"]
