"""Unit tests for Pattern and BoundedPattern."""

import pytest

from repro.graph import ANY, BoundedPattern, Label, Pattern
from repro.graph.pattern import bound_le, check_bound


def diamond():
    q = Pattern()
    q.add_node("a", "A")
    q.add_node("b", "B")
    q.add_node("c", "C")
    q.add_node("d", "D")
    q.add_edge("a", "b")
    q.add_edge("a", "c")
    q.add_edge("b", "d")
    q.add_edge("c", "d")
    return q


class TestPattern:
    def test_sizes(self):
        q = diamond()
        assert q.num_nodes == 4
        assert q.num_edges == 4
        assert q.size == 8

    def test_condition_coercion(self):
        q = diamond()
        assert q.condition("a") == Label("A")

    def test_edge_requires_known_nodes(self):
        q = Pattern()
        q.add_node("a", "A")
        with pytest.raises(KeyError):
            q.add_edge("a", "ghost")
        with pytest.raises(KeyError):
            q.add_edge("ghost", "a")

    def test_adjacency(self):
        q = diamond()
        assert q.successors("a") == {"b", "c"}
        assert q.predecessors("d") == {"b", "c"}
        assert set(q.out_edges("a")) == {("a", "b"), ("a", "c")}
        assert set(q.in_edges("d")) == {("b", "d"), ("c", "d")}

    def test_edge_set(self):
        assert ("a", "b") in diamond().edge_set()

    def test_duplicate_edge_ignored(self):
        q = diamond()
        q.add_edge("a", "b")
        assert q.num_edges == 4

    def test_isolated_nodes(self):
        q = diamond()
        q.add_node("lonely", "L")
        assert q.isolated_nodes() == ["lonely"]
        assert not q.is_connected()

    def test_connectivity(self):
        assert diamond().is_connected()

    def test_copy_independent(self):
        q = diamond()
        r = q.copy()
        r.add_node("e", "E")
        r.add_edge("d", "e")
        assert "e" not in q
        assert q.num_edges == 4

    def test_subpattern(self):
        q = diamond()
        sub = q.subpattern([("a", "b"), ("b", "d")])
        assert set(sub.nodes()) == {"a", "b", "d"}
        assert sub.num_edges == 2
        assert sub.condition("b") == Label("B")

    def test_subpattern_rejects_non_edges(self):
        with pytest.raises(KeyError):
            diamond().subpattern([("a", "d")])


class TestBounds:
    def test_check_bound_accepts_positive_ints(self):
        assert check_bound(3) == 3
        assert check_bound(ANY) is ANY

    def test_check_bound_rejects_bad_values(self):
        with pytest.raises(ValueError):
            check_bound(0)
        with pytest.raises(ValueError):
            check_bound(-2)
        with pytest.raises(ValueError):
            check_bound(True)
        with pytest.raises(ValueError):
            check_bound("3")

    def test_bound_partial_order(self):
        assert bound_le(1, 2)
        assert bound_le(2, 2)
        assert not bound_le(3, 2)
        assert bound_le(5, ANY)
        assert bound_le(ANY, ANY)
        assert not bound_le(ANY, 100)

    def test_any_is_singleton(self):
        from repro.graph.pattern import _Any

        assert _Any() is ANY

    def test_any_repr(self):
        assert repr(ANY) == "*"


class TestBoundedPattern:
    def make(self):
        q = BoundedPattern()
        q.add_node("a", "A")
        q.add_node("b", "B")
        q.add_node("c", "C")
        q.add_edge("a", "b", 2)
        q.add_edge("b", "c", ANY)
        return q

    def test_bounds(self):
        q = self.make()
        assert q.bound(("a", "b")) == 2
        assert q.bound(("b", "c")) is ANY
        assert q.bounds() == {("a", "b"): 2, ("b", "c"): ANY}

    def test_default_bound_is_one(self):
        q = BoundedPattern()
        q.add_node("a", "A")
        q.add_node("b", "B")
        q.add_edge("a", "b")
        assert q.bound(("a", "b")) == 1

    def test_max_finite_bound(self):
        q = self.make()
        assert q.max_finite_bound() == 2

    def test_has_unbounded_edge(self):
        assert self.make().has_unbounded_edge()

    def test_promotion_from_pattern(self):
        q = diamond().bounded(default=3)
        assert isinstance(q, BoundedPattern)
        assert q.bound(("a", "b")) == 3
        assert q.num_edges == 4

    def test_bounded_of_bounded_copies(self):
        q = self.make()
        r = q.bounded()
        assert r is not q
        assert r.bounds() == q.bounds()

    def test_unbounded_pattern_drops_bounds(self):
        q = self.make()
        plain = q.unbounded_pattern()
        assert not isinstance(plain, BoundedPattern)
        assert set(plain.edges()) == set(q.edges())

    def test_subpattern_keeps_bounds(self):
        q = self.make()
        sub = q.subpattern([("b", "c")])
        assert sub.bound(("b", "c")) is ANY

    def test_copy_keeps_bounds(self):
        q = self.make()
        r = q.copy()
        assert r.bounds() == q.bounds()
