"""Tests for incremental view maintenance."""

import random

import pytest

from repro.graph import BoundedPattern, DataGraph
from repro.views import ViewDefinition
from repro.views.maintenance import IncrementalView
from repro.views.view import materialize

from helpers import build_graph, build_pattern, random_labeled_graph


def chain_view():
    return ViewDefinition(
        "chain", build_pattern({"a": "A", "b": "B"}, [("a", "b")])
    )


class TestBasics:
    def test_rejects_bounded_views(self):
        q = BoundedPattern()
        q.add_node("a", "A")
        q.add_node("b", "B")
        q.add_edge("a", "b", 2)
        with pytest.raises(TypeError):
            IncrementalView(ViewDefinition("b", q), DataGraph())

    def test_initial_extension_matches_materialize(self):
        g = build_graph({1: "A", 2: "B", 3: "B"}, [(1, 2), (1, 3)])
        tracker = IncrementalView(chain_view(), g)
        fresh = materialize(chain_view(), g)
        assert tracker.extension().edge_matches == fresh.edge_matches

    def test_tracker_owns_graph_copy(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        tracker = IncrementalView(chain_view(), g)
        g.remove_edge(1, 2)  # external mutation must not desync tracker
        assert tracker.extension().num_pairs == 1


class TestDeletion:
    def test_single_deletion(self):
        g = build_graph({1: "A", 2: "B", 3: "B"}, [(1, 2), (1, 3)])
        tracker = IncrementalView(chain_view(), g)
        tracker.delete_edge(1, 2)
        assert tracker.extension().pairs_of(("a", "b")) == {(1, 3)}

    def test_deletion_cascade(self):
        view = ViewDefinition(
            "chain3",
            build_pattern(
                {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
            ),
        )
        g = build_graph({1: "A", 2: "B", 3: "C"}, [(1, 2), (2, 3)])
        tracker = IncrementalView(view, g)
        assert tracker.extension().num_pairs == 2
        # Deleting b->c invalidates node 2 as a match of "b", which in
        # turn kills the (1,2) pair of edge (a,b).
        tracker.delete_edge(2, 3)
        assert tracker.extension().is_empty

    def test_deletion_to_empty_then_more_deletions(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2), (2, 1)])
        tracker = IncrementalView(chain_view(), g)
        tracker.delete_edge(1, 2)
        assert tracker.extension().is_empty
        tracker.delete_edge(2, 1)  # must not crash on an empty view
        assert tracker.extension().is_empty


class TestInsertion:
    def test_relevant_insertion_adds_matches(self):
        g = build_graph({1: "A", 2: "B", 3: "B"}, [(1, 2)])
        tracker = IncrementalView(chain_view(), g)
        tracker.insert_edge(1, 3)
        assert tracker.extension().pairs_of(("a", "b")) == {(1, 2), (1, 3)}

    def test_irrelevant_insertion_is_noop(self):
        g = build_graph({1: "A", 2: "B", 3: "C", 4: "C"}, [(1, 2)])
        tracker = IncrementalView(chain_view(), g)
        before = tracker.extension().edge_matches
        tracker.insert_edge(3, 4)  # C->C cannot touch an A->B view
        assert tracker.extension().edge_matches == before

    def test_insertion_revives_empty_view(self):
        g = build_graph({1: "A", 2: "B"}, [])
        tracker = IncrementalView(chain_view(), g)
        assert tracker.extension().is_empty
        tracker.insert_edge(1, 2)
        assert tracker.extension().pairs_of(("a", "b")) == {(1, 2)}

    def test_duplicate_insertion_ignored(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        tracker = IncrementalView(chain_view(), g)
        tracker.insert_edge(1, 2)
        assert tracker.extension().num_pairs == 1


class TestIncrementalViewSet:
    def make(self):
        from repro.views.maintenance import IncrementalViewSet

        g = build_graph(
            {1: "A", 2: "B", 3: "C", 4: "B"},
            [(1, 2), (2, 3), (1, 4)],
        )
        definitions = [
            ViewDefinition("ab", build_pattern({"a": "A", "b": "B"}, [("a", "b")])),
            ViewDefinition("bc", build_pattern({"b": "B", "c": "C"}, [("b", "c")])),
        ]
        return g, IncrementalViewSet(definitions, g)

    def test_initial_snapshot(self):
        g, tracked = self.make()
        snapshot = tracked.as_viewset()
        for definition in snapshot:
            fresh = materialize(definition, g)
            assert snapshot.extension(definition.name).edge_matches == fresh.edge_matches

    def test_shared_deletion_updates_all_views(self):
        g, tracked = self.make()
        tracked.delete_edge(2, 3)
        g.remove_edge(2, 3)
        assert tracked.extension("bc").is_empty
        assert tracked.extension("ab").pairs_of(("a", "b")) == {(1, 2), (1, 4)}

    def test_shared_insertion(self):
        g, tracked = self.make()
        tracked.insert_edge(4, 3)
        g.add_edge(4, 3)
        assert tracked.extension("bc").pairs_of(("b", "c")) == {(2, 3), (4, 3)}

    def test_update_stream_matches_rematerialization(self):
        import random

        from repro.views.maintenance import IncrementalViewSet

        rng = random.Random(11)
        g = random_labeled_graph(rng, 25, 70)
        definitions = [
            ViewDefinition("v1", build_pattern({"x": "A", "y": "B"}, [("x", "y")])),
            ViewDefinition(
                "v2",
                build_pattern({"x": "B", "y": "C", "z": "A"}, [("x", "y"), ("y", "z")]),
            ),
        ]
        tracked = IncrementalViewSet(definitions, g)
        for _ in range(30):
            if rng.random() < 0.5 and g.num_edges:
                edge = rng.choice(list(g.edges()))
                g.remove_edge(*edge)
                tracked.delete_edge(*edge)
            else:
                a, b = rng.randrange(25), rng.randrange(25)
                if a == b or g.has_edge(a, b):
                    continue
                g.add_edge(a, b)
                tracked.insert_edge(a, b)
        for definition in definitions:
            fresh = materialize(definition, g)
            assert tracked.extension(definition.name).edge_matches == fresh.edge_matches


class TestAgainstRematerialization:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_update_streams(self, seed):
        rng = random.Random(seed)
        g = random_labeled_graph(rng, 30, 80)
        view = ViewDefinition(
            "v",
            build_pattern(
                {"x": "A", "y": "B", "z": "C"}, [("x", "y"), ("y", "z")]
            ),
        )
        tracker = IncrementalView(view, g)
        for _ in range(40):
            if rng.random() < 0.5 and g.num_edges:
                edge = rng.choice(list(g.edges()))
                g.remove_edge(*edge)
                tracker.delete_edge(*edge)
            else:
                a, b = rng.randrange(30), rng.randrange(30)
                if a == b or g.has_edge(a, b):
                    continue
                g.add_edge(a, b)
                tracker.insert_edge(a, b)
            fresh = materialize(view, g)
            assert tracker.extension().edge_matches == fresh.edge_matches
