"""Tests for dual and strong simulation, and dual view answering."""

import random

import pytest

from repro.core.dual import (
    dual_contains,
    dual_match_join,
    dual_view_match,
    materialize_dual,
)
from repro.simulation import dual_match, match, strong_match
from repro.simulation.strong import ball, pattern_diameter
from repro.views import ViewDefinition, ViewSet

from helpers import (
    build_graph,
    build_pattern,
    random_labeled_graph,
    random_pattern,
)


class TestDualSimulation:
    def test_parent_condition_enforced(self):
        # B node without an A-parent fails dual (but passes plain) sim.
        g = build_graph({1: "A", 2: "B", 3: "B"}, [(1, 2)])
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        plain = match(q, g)
        dual = dual_match(q, g)
        assert plain.node_matches["b"] == {2, 3}
        assert dual.node_matches["b"] == {2}

    def test_dual_subset_of_plain(self):
        rng = random.Random(1)
        for _ in range(10):
            g = random_labeled_graph(rng, 20, 50)
            q = random_pattern(rng, 3, 4)
            plain = match(q, g)
            dual = dual_match(q, g)
            if not dual:
                continue
            assert plain
            for u in q.nodes():
                assert dual.node_matches[u] <= plain.node_matches[u]
            for e in q.edges():
                assert dual.edge_matches[e] <= plain.edge_matches[e]

    def test_paper_fig3_dual_gives_example4_table(self):
        """Under *dual* simulation the Fig. 3 narrative of Example 4 is
        exactly right: the parent cascade removes (SE1,DB2), (DB2,AI2).
        (See DESIGN.md's Example 4 erratum.)"""
        g = build_graph(
            {
                "PM1": "PM", "DB1": "DB", "DB2": "DB", "AI1": "AI", "AI2": "AI",
                "SE1": "SE", "SE2": "SE", "Bio1": "Bio",
            },
            [
                ("PM1", "AI2"), ("DB1", "AI2"), ("DB2", "AI2"),
                ("AI1", "SE1"), ("AI2", "SE2"), ("SE1", "DB2"), ("SE2", "DB1"),
                ("AI2", "Bio1"),
            ],
        )
        q = build_pattern(
            {"PM": "PM", "AI": "AI", "DB": "DB", "SE": "SE", "Bio": "Bio"},
            [("PM", "AI"), ("AI", "Bio"), ("DB", "AI"), ("AI", "SE"), ("SE", "DB")],
        )
        result = dual_match(q, g)
        em = result.edge_matches
        assert em[("DB", "AI")] == {("DB1", "AI2")}
        assert em[("SE", "DB")] == {("SE2", "DB1")}
        assert em[("AI", "SE")] == {("AI2", "SE2")}

    def test_no_match(self):
        g = build_graph({1: "A"}, [])
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        assert not dual_match(q, g)


class TestStrongSimulation:
    def test_diameter(self):
        q = build_pattern(
            {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
        )
        assert pattern_diameter(q) == 2

    def test_ball_radius(self):
        g = build_graph(
            {1: "A", 2: "B", 3: "C", 4: "D"}, [(1, 2), (2, 3), (3, 4)]
        )
        assert ball(g, 1, 1) == {1, 2}
        assert ball(g, 2, 1) == {1, 2, 3}  # undirected radius

    def test_strong_subset_of_dual(self):
        rng = random.Random(3)
        g = random_labeled_graph(rng, 15, 40)
        q = random_pattern(rng, 3, 3)
        dual = dual_match(q, g)
        strong, balls = strong_match(q, g)
        if strong:
            for u in q.nodes():
                assert strong.node_matches[u] <= dual.node_matches[u]

    def test_locality_separates_strong_from_dual(self):
        # Two far-apart halves each carrying half the pattern: dual sim
        # on the whole graph can pair them; strong sim cannot because no
        # ball contains a full match.  Classic Ma et al. style example:
        # a long cycle A->B->A->B...
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        g = build_graph(
            {1: "A", 2: "B", 3: "A", 4: "B"},
            [(1, 2), (2, 3), (3, 4), (4, 1)],
        )
        dual = dual_match(q, g)
        assert dual  # the 4-cycle dual-simulates the 2-cycle
        strong, balls = strong_match(q, g)
        # Ball radius = diameter(q) = 1; no radius-1 ball contains a
        # 2-cycle, so strong simulation finds nothing.
        assert not strong
        assert balls == []

    def test_strong_match_on_true_cycle(self):
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        g = build_graph({1: "A", 2: "B"}, [(1, 2), (2, 1)])
        strong, balls = strong_match(q, g)
        assert strong
        assert strong.node_matches["a"] == {1}


class TestDualViewAnswering:
    def setup(self):
        g = build_graph(
            {1: "A", 2: "B", 3: "C", 4: "B"},
            [(1, 2), (2, 3), (1, 4)],
        )
        q = build_pattern(
            {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
        )
        views = ViewSet(
            [
                ViewDefinition("Vab", q.subpattern([("a", "b")])),
                ViewDefinition("Vbc", q.subpattern([("b", "c")])),
            ]
        )
        for definition in views:
            views.set_extension(materialize_dual(definition, g))
        return g, q, views

    def test_dual_contains(self):
        g, q, views = self.setup()
        containment = dual_contains(q, views)
        assert containment.holds

    def test_dual_match_join_equals_direct(self):
        g, q, views = self.setup()
        containment = dual_contains(q, views)
        result = dual_match_join(q, containment, views)
        direct = dual_match(q, g)
        assert result.edge_matches == direct.edge_matches

    @pytest.mark.parametrize("seed", range(15))
    def test_random_instances(self, seed):
        rng = random.Random(seed + 300)
        g = random_labeled_graph(rng, rng.randint(8, 30), rng.randint(10, 80))
        q = random_pattern(rng, rng.randint(2, 4), rng.randint(2, 6))
        views = ViewSet()
        for i, edge in enumerate(q.edges()):
            views.add(ViewDefinition(f"E{i}", q.subpattern([edge])))
        containment = dual_contains(q, views)
        assert containment.holds
        for definition in views:
            views.set_extension(materialize_dual(definition, g))
        result = dual_match_join(q, containment, views)
        direct = dual_match(q, g)
        assert result.edge_matches == direct.edge_matches

    def test_plain_extensions_also_converge(self):
        """Plain-simulation extensions over-approximate dual ones; the
        dual fixpoint still converges to the dual answer."""
        g, q, views = self.setup()
        views.materialize(g)  # plain extensions
        containment = dual_contains(q, views)
        result = dual_match_join(q, containment, views)
        assert result.edge_matches == dual_match(q, g).edge_matches
