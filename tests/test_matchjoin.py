"""Tests for MatchJoin (Fig. 2), its optimized engine, and Theorem 1."""

import random

import pytest

from repro.core.containment import contains
from repro.core.matchjoin import match_join, merge_initial_sets
from repro.core.minimal import minimal_views
from repro.core.minimum import minimum_views
from repro.errors import (
    NotContainedError,
    NotMaterializedError,
    UnsupportedPatternError,
)
from repro.graph import Pattern
from repro.simulation import match
from repro.views import ViewDefinition, ViewSet

from helpers import (
    build_graph,
    build_pattern,
    random_labeled_graph,
    random_pattern,
)


def fig3_setup():
    """Fig. 3: graph G, views V1/V2, query Qs (Example 4)."""
    g = build_graph(
        {
            "PM1": "PM", "DB1": "DB", "DB2": "DB", "AI1": "AI", "AI2": "AI",
            "SE1": "SE", "SE2": "SE", "Bio1": "Bio",
        },
        [
            ("PM1", "AI2"), ("DB1", "AI2"), ("DB2", "AI2"),
            ("AI1", "SE1"), ("AI2", "SE2"), ("SE1", "DB2"), ("SE2", "DB1"),
            ("AI2", "Bio1"),
        ],
    )
    q = build_pattern(
        {"PM": "PM", "AI": "AI", "DB": "DB", "SE": "SE", "Bio": "Bio"},
        [("PM", "AI"), ("AI", "Bio"), ("DB", "AI"), ("AI", "SE"), ("SE", "DB")],
    )
    v1 = build_pattern(
        {"AI": "AI", "Bio": "Bio", "PM": "PM"}, [("AI", "Bio"), ("PM", "AI")]
    )
    v2 = build_pattern(
        {"DB": "DB", "AI": "AI", "SE": "SE"},
        [("DB", "AI"), ("AI", "SE"), ("SE", "DB")],
    )
    views = ViewSet([ViewDefinition("V1", v1), ViewDefinition("V2", v2)])
    views.materialize(g)
    return g, q, views


class TestExample4:
    def test_fig3_result_table(self):
        """Example 4 checked against the *definitions*, not the printed
        table.

        The conference paper's Example 4 table drops (SE1, DB2) and
        (DB2, AI2), narrating a cascade that would need a parent
        condition.  Plain simulation (Section II-A) and the Fig. 2
        pseudocode (which checks out-edges only) both keep those pairs:
        given the view extensions printed in Fig. 3(b), SE1 -> DB2 ->
        AI2 -> {SE2, Bio1} is self-supporting, so the pairs are in the
        maximum simulation of any graph containing those edges
        (simulation is monotone in edges).  Direct evaluation with
        match() returns exactly the result below, and Theorem 1 demands
        MatchJoin agree with it -- see test_agrees_with_direct_match.
        DESIGN.md records the discrepancy.
        """
        g, q, views = fig3_setup()
        containment = contains(q, views)
        assert containment.holds
        result = match_join(q, containment, views)
        em = result.edge_matches
        assert em[("PM", "AI")] == {("PM1", "AI2")}
        assert em[("AI", "Bio")] == {("AI2", "Bio1")}
        assert em[("DB", "AI")] == {("DB1", "AI2"), ("DB2", "AI2")}
        assert em[("AI", "SE")] == {("AI2", "SE2")}
        assert em[("SE", "DB")] == {("SE1", "DB2"), ("SE2", "DB1")}

    def test_fixpoint_removed_invalid_matches(self):
        """The merged views contain (AI1, SE1), which is not a valid
        match of (AI, SE) -- AI1 has no Bio successor -- and the
        fixpoint must remove it (the sound part of Example 4's
        narrative)."""
        g, q, views = fig3_setup()
        containment = contains(q, views)
        initial = merge_initial_sets(q, containment, views.extensions())
        assert ("AI1", "SE1") in initial[("AI", "SE")]
        result = match_join(q, containment, views)
        assert ("AI1", "SE1") not in result.edge_matches[("AI", "SE")]

    def test_agrees_with_direct_match(self):
        g, q, views = fig3_setup()
        direct = match(q, g)
        result = match_join(q, contains(q, views), views)
        assert result.edge_matches == direct.edge_matches

    def test_naive_engine_agrees(self):
        g, q, views = fig3_setup()
        containment = contains(q, views)
        optimized = match_join(q, containment, views, optimized=True)
        naive = match_join(q, containment, views, optimized=False)
        assert optimized.edge_matches == naive.edge_matches


class TestErrors:
    def test_not_contained_raises(self):
        g, q, views = fig3_setup()
        only_v1 = views.subset(["V1"])
        containment = contains(q, only_v1)
        with pytest.raises(NotContainedError) as err:
            match_join(q, containment, only_v1)
        assert ("DB", "AI") in err.value.uncovered

    def test_missing_extension_raises(self):
        g, q, views = fig3_setup()
        containment = contains(q, views)
        views.drop_extension("V2")
        with pytest.raises(NotMaterializedError):
            match_join(q, containment, views)

    def test_isolated_node_rejected(self):
        g, q, views = fig3_setup()
        q2 = q.copy()
        q2.add_node("lonely", "PM")
        containment = contains(q, views)
        with pytest.raises(UnsupportedPatternError):
            match_join(q2, containment, views)


class TestTheorem1RandomInstances:
    """Whenever Qs ⊑ V, MatchJoin(V(G)) == Match(G) -- on many random
    graphs, views, and queries (the constructive half of Theorem 1)."""

    @pytest.mark.parametrize("seed", range(30))
    def test_view_based_equals_direct(self, seed):
        rng = random.Random(seed)
        g = random_labeled_graph(rng, rng.randint(8, 40), rng.randint(10, 120))
        q = random_pattern(rng, rng.randint(2, 5), rng.randint(2, 8))
        # Views: one subpattern per edge, sometimes merged pairs.
        edges = q.edges()
        views = ViewSet()
        for i, edge in enumerate(edges):
            views.add(ViewDefinition(f"E{i}", q.subpattern([edge])))
        if len(edges) >= 2 and rng.random() < 0.5:
            pair = rng.sample(edges, 2)
            views.add(ViewDefinition("P", q.subpattern(pair)))
        containment = contains(q, views)
        assert containment.holds, "single-edge views must always cover"
        views.materialize(g)
        direct = match(q, g)
        result = match_join(q, containment, views)
        assert result.edge_matches == direct.edge_matches
        naive = match_join(q, containment, views, optimized=False)
        assert naive.edge_matches == direct.edge_matches

    @pytest.mark.parametrize("seed", [3, 11, 17])
    @pytest.mark.parametrize("selection", ["minimal", "minimum"])
    def test_selection_strategies_agree(self, seed, selection):
        rng = random.Random(seed)
        g = random_labeled_graph(rng, 25, 70)
        q = random_pattern(rng, 4, 6)
        views = ViewSet()
        for i, edge in enumerate(q.edges()):
            views.add(ViewDefinition(f"E{i}", q.subpattern([edge])))
        select = minimal_views if selection == "minimal" else minimum_views
        containment = select(q, views)
        assert containment.holds
        views.materialize(g, names=containment.views_used())
        direct = match(q, g)
        result = match_join(q, containment, views)
        assert result.edge_matches == direct.edge_matches


class TestSelfLoopPatterns:
    def test_self_loop_through_pipeline(self):
        """Pattern self-loops (u, u) work in Match, both MatchJoin
        engines, and containment."""
        g = build_graph({1: "A", 2: "A", 3: "A"}, [(1, 1), (1, 2), (2, 3)])
        q = Pattern()
        q.add_node("a", "A")
        q.add_edge("a", "a")
        direct = match(q, g)
        assert direct.edge_matches == {("a", "a"): {(1, 1)}}
        views = ViewSet([ViewDefinition("V", q.copy())])
        views.materialize(g)
        containment = contains(q, views)
        assert containment.holds
        for optimized in (True, False):
            result = match_join(q, containment, views, optimized=optimized)
            assert result.edge_matches == direct.edge_matches

    def test_self_loop_no_match(self):
        g = build_graph({1: "A", 2: "A"}, [(1, 2)])
        q = Pattern()
        q.add_node("a", "A")
        q.add_edge("a", "a")
        assert not match(q, g)


class TestNoMatchPropagation:
    def test_empty_initial_set_returns_empty(self):
        g = build_graph({1: "A", 2: "B", 3: "C"}, [(1, 2)])
        q = build_pattern(
            {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
        )
        views = ViewSet(
            [
                ViewDefinition("Vab", q.subpattern([("a", "b")])),
                ViewDefinition("Vbc", q.subpattern([("b", "c")])),
            ]
        )
        views.materialize(g)
        containment = contains(q, views)
        assert containment.holds
        result = match_join(q, containment, views)
        assert not result
        assert not match_join(q, containment, views, optimized=False)

    def test_fixpoint_empties_everything(self):
        # Views individually nonempty, but the join is empty: B node with
        # a C successor exists, and a B node pointed to by A exists, but
        # they are different nodes.
        g = build_graph(
            {1: "A", 2: "B", 3: "B", 4: "C"}, [(1, 2), (3, 4)]
        )
        q = build_pattern(
            {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
        )
        views = ViewSet(
            [
                ViewDefinition("Vab", q.subpattern([("a", "b")])),
                ViewDefinition("Vbc", q.subpattern([("b", "c")])),
            ]
        )
        views.materialize(g)
        containment = contains(q, views)
        result = match_join(q, containment, views)
        assert not result
        assert not match(q, g)
