"""The delta-driven maintenance pipeline, end to end.

Property-based equivalence: random interleaved insert/delete/batch
streams must leave every layer -- view trackers, the frozen
``CompactGraph`` snapshot, the ``ShardedGraph`` composite snapshot and
the ``QueryEngine`` caches -- in exactly the state a from-scratch
rebuild would produce, while touching only the affected area:

* incremental view state == from-scratch rematerialization after every
  update, across dict, compact and sharded backends, for every
  affected-area budget (including the fallback boundary);
* refreshed snapshots == freshly built snapshots, with unchanged
  adjacency rows / shard snapshots reused by reference and pre-existing
  ids stable;
* engine answer caches retain entries for plans that read only
  unchanged views, and evict exactly the rest.
"""

import random

import pytest

from helpers import build_graph, build_pattern, random_labeled_graph
from repro.engine import QueryEngine
from repro.graph.compact import CompactGraph
from repro.graph.digraph import DataGraph
from repro.shard.sharded import ShardedGraph
from repro.shard.psim import sharded_match
from repro.simulation import match
from repro.views import Delta, ViewDefinition, ViewSet, bind_extension, materialize
from repro.views.maintenance import IncrementalView, IncrementalViewSet


def _definitions():
    return [
        ViewDefinition("AB", build_pattern({"a": "A", "b": "B"}, [("a", "b")])),
        ViewDefinition("BC", build_pattern({"b": "B", "c": "C"}, [("b", "c")])),
        ViewDefinition(
            "ABC",
            build_pattern(
                {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
            ),
        ),
    ]


def _stream(rng, graph, rounds, fresh_nodes=0):
    """Random interleaved ops, valid against the evolving graph; node
    keys may exceed the current node set (``add_edge`` auto-creates)."""
    population = len(graph) + fresh_nodes
    ops = []
    present = set(graph.edges())
    for _ in range(rounds):
        if present and rng.random() < 0.45:
            edge = rng.choice(sorted(present, key=repr))
            ops.append(("delete", *edge))
            present.discard(edge)
        else:
            source, target = rng.randrange(population), rng.randrange(population)
            if source == target or (source, target) in present:
                continue
            ops.append(("insert", source, target))
            present.add((source, target))
    return ops


class TestDelta:
    def test_builder_and_ops(self):
        delta = Delta().insert(1, 2).delete(2, 3).insert(3, 4)
        assert len(delta) == 3
        assert delta.ops == (
            ("insert", 1, 2),
            ("delete", 2, 3),
            ("insert", 3, 4),
        )
        assert bool(delta)
        assert not Delta()

    def test_rejects_unknown_ops(self):
        with pytest.raises(ValueError):
            Delta([("upsert", 1, 2)])

    def test_parse_text_stream(self):
        delta = Delta.parse(
            [
                "# churn",
                "+ 1 2",
                "",
                '- 2 "v3"',
                "insert a b",
                "delete 4 5",
            ]
        )
        assert delta.ops == (
            ("insert", 1, 2),
            ("delete", 2, "v3"),
            ("insert", "a", "b"),
            ("delete", 4, 5),
        )

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            Delta.parse(["+ 1"])
        with pytest.raises(ValueError):
            Delta.parse(["? 1 2"])

    def test_parse_errors_name_the_offending_line(self):
        # Too few tokens: a clear ValueError, not a bare IndexError.
        with pytest.raises(ValueError, match=r"line 3"):
            Delta.parse(["# header", "+ 1 2", "+ 9"])
        # Trailing junk tokens are rejected, not silently dropped.
        with pytest.raises(ValueError, match=r"line 2.*got 4"):
            Delta.parse(["+ 1 2", "- 3 4 extra"])
        # Unknown ops name the line too (blank/comment lines still
        # count toward the reported number -- it must match the file).
        with pytest.raises(ValueError, match=r"'\?' on line 4"):
            Delta.parse(["+ 1 2", "", "# note", "? 1 2"])


class TestConstructorSatellites:
    def test_shared_constructor_parameter(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        owned = IncrementalView(_definitions()[0], g)
        assert owned.graph is not g  # defensive copy
        shared = IncrementalView(_definitions()[0], g, shared=True)
        assert shared.graph is g

    def test_shared_tracker_rejects_direct_updates(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        tracked = IncrementalViewSet(_definitions(), g)
        view = tracked._trackers["AB"]
        with pytest.raises(RuntimeError):
            view.insert_edge(1, 2)
        with pytest.raises(RuntimeError):
            view.delete_edge(1, 2)

    def test_delete_edge_noops_on_missing_edge(self):
        g = build_graph({1: "A", 2: "B"}, [(1, 2)])
        tracker = IncrementalView(_definitions()[0], g)
        assert tracker.delete_edge(2, 1) is False  # never existed
        assert tracker.extension().num_pairs == 1
        tracked = IncrementalViewSet(_definitions(), g)
        events = []
        tracked.subscribe(events.append)
        assert tracked.delete_edge(9, 9) is False
        assert events == []  # no state change, no event

    def test_extension_cached_behind_dirty_flag(self):
        g = build_graph({1: "A", 2: "B", 3: "C"}, [(1, 2), (2, 3)])
        tracker = IncrementalView(_definitions()[0], g)
        first = tracker.extension()
        assert tracker.extension() is first  # no rebuild between reads
        tracker.insert_edge(3, 1)  # irrelevant for an A->B view
        assert tracker.extension() is first  # provably unchanged: kept
        builds_before = tracker.stats.extension_builds
        tracker.delete_edge(1, 2)  # changes the match set
        second = tracker.extension()
        assert second is not first
        assert tracker.stats.extension_builds == builds_before + 1


class TestBudgetBoundary:
    def _setup(self, budget):
        pattern = build_pattern(
            {"a": "A", "b": "B", "c": "C", "d": "D"},
            [("a", "b"), ("b", "c"), ("c", "d")],
        )
        graph = DataGraph()
        # A complete witness chain keeps the view non-empty ...
        for node, label in zip(range(10, 14), "ABCD"):
            graph.add_node(node, labels=label)
        graph.add_edge(10, 11)
        graph.add_edge(11, 12)
        graph.add_edge(12, 13)
        # ... while a broken chain misses its last hop: inserting it
        # revives exactly three pairs -- (c,2), (b,1), (a,0).
        for node, label in zip(range(4), "ABCD"):
            graph.add_node(node, labels=label)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        view = ViewDefinition("chain", pattern)
        return graph, view, IncrementalView(view, graph, budget=budget)

    @pytest.mark.parametrize("budget,expect_incremental", [
        (2, False),   # area 3 > budget 2: fall back to recompute
        (3, True),    # area 3 == budget 3: incremental revival
        (None, True),
    ])
    def test_fallback_boundary(self, budget, expect_incremental):
        graph, view, tracker = self._setup(budget)
        graph.add_edge(2, 3)
        tracker.insert_edge(2, 3)
        fresh = materialize(view, graph)
        assert tracker.extension().edge_matches == fresh.edge_matches
        if expect_incremental:
            assert tracker.stats.incremental_inserts == 1
            assert tracker.stats.recomputes == 0
            assert tracker.stats.revived_pairs == 3
            assert tracker.stats.affected_area == 3
        else:
            assert tracker.stats.incremental_inserts == 0
            assert tracker.stats.recomputes == 1

    def test_deletion_after_incremental_insert_stays_consistent(self):
        # The revival path must leave witness counters exact, or a
        # later deletion cascade would prune the wrong pairs.
        graph, view, tracker = self._setup(None)
        graph.add_edge(2, 3)
        tracker.insert_edge(2, 3)
        for edge in [(12, 13), (2, 3), (0, 1)]:
            graph.remove_edge(*edge)
            tracker.delete_edge(*edge)
            fresh = materialize(view, graph)
            assert tracker.extension().edge_matches == fresh.edge_matches, edge


class TestStreamEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("budget", [None, 2])
    def test_viewset_stream_matches_rematerialization(self, seed, budget):
        rng = random.Random(seed)
        graph = random_labeled_graph(rng, 24, 60)
        definitions = _definitions()
        tracked = IncrementalViewSet(definitions, graph, budget=budget)
        mirror = graph.copy()
        ops = _stream(rng, graph, 50, fresh_nodes=4)
        # Interleave singles and batches.
        index = 0
        while index < len(ops):
            take = 1 if rng.random() < 0.4 else rng.randrange(2, 6)
            chunk = ops[index : index + take]
            index += take
            if len(chunk) == 1:
                op, source, target = chunk[0]
                if op == "insert":
                    tracked.insert_edge(source, target)
                else:
                    tracked.delete_edge(source, target)
            else:
                tracked.apply_delta(Delta(chunk))
            for op, source, target in chunk:
                if op == "insert":
                    mirror.add_edge(source, target)
                else:
                    mirror.remove_edge(source, target)
            for definition in definitions:
                fresh = materialize(definition, mirror)
                assert (
                    tracked.extension(definition.name).edge_matches
                    == fresh.edge_matches
                ), (seed, budget, definition.name)

    @pytest.mark.parametrize("seed", range(3))
    def test_compact_refresh_stream(self, seed):
        rng = random.Random(seed + 100)
        graph = random_labeled_graph(rng, 30, 80)
        previous = graph.freeze()
        for round_index in range(6):
            for op, source, target in _stream(rng, graph, 8, fresh_nodes=3):
                if op == "insert":
                    graph.add_edge(source, target)
                else:
                    graph.remove_edge(source, target)
            refreshed = graph.freeze()
            fresh = CompactGraph(graph, graph.version)
            assert refreshed.extends_token == previous.snapshot_token
            assert list(refreshed.nodes()) == list(fresh.nodes())
            assert sorted(refreshed.edges(), key=repr) == sorted(
                fresh.edges(), key=repr
            )
            for node in graph.nodes():
                assert refreshed.successors(node) == fresh.successors(node)
                assert refreshed.predecessors(node) == fresh.predecessors(node)
                assert refreshed.labels(node) == fresh.labels(node)
                assert refreshed.attrs(node) == fresh.attrs(node)
            assert refreshed.label_index_stats() == fresh.label_index_stats()
            # Pre-existing ids are stable across the refresh chain.
            for node in previous.nodes():
                assert refreshed.id_of(node) == previous.id_of(node)
            previous = refreshed

    def test_refresh_reuses_untouched_rows(self):
        graph = random_labeled_graph(random.Random(7), 40, 100)
        first = graph.freeze()
        source = next(iter(graph.nodes()))
        target = next(
            node for node in graph.nodes()
            if node != source and not graph.has_edge(source, node)
        )
        graph.add_edge(source, target)
        second = graph.freeze()
        touched = {graph.freeze().id_of(source)}
        reused = sum(
            1
            for i in range(len(first))
            if second.succ_rows[i] is first.succ_rows[i]
        )
        assert reused >= len(first) - len(touched)

    def test_label_mutation_breaks_refresh(self):
        graph = build_graph({1: "A", 2: "B"}, [(1, 2)])
        first = graph.freeze()
        graph.add_node(1, labels="Z")  # existing node gains a label
        second = graph.freeze()
        assert second.extends_token is None  # full rebuild
        assert second.labels(1) == frozenset({"A", "Z"})

    def test_apply_delta_skips_inapplicable_ops(self):
        graph = build_graph({1: "A", 2: "B"}, [(1, 2)])
        applied = graph.apply_delta(
            Delta().insert(1, 2).delete(2, 1).insert(2, 1).delete(1, 2)
        )
        assert applied == [("insert", 2, 1), ("delete", 1, 2)]
        assert sorted(graph.edges()) == [(2, 1)]


class TestShardedRefresh:
    @pytest.mark.parametrize("strategy", ["hash", "label", "bfs"])
    def test_refreshed_equals_fresh_build(self, strategy):
        rng = random.Random(11)
        graph = random_labeled_graph(rng, 36, 100)
        sharded = ShardedGraph(graph, num_shards=3, strategy=strategy)
        base = graph.version
        for op, source, target in _stream(rng, graph, 24, fresh_nodes=4):
            if op == "insert":
                graph.add_edge(source, target)
            else:
                graph.remove_edge(source, target)
        ops = graph.edge_changes_since(base)
        assert ops is not None
        refreshed = sharded.refreshed(graph, ops)
        assert refreshed.extends_token == sharded.snapshot_token
        assert set(refreshed.nodes()) == set(graph.nodes())
        for node in graph.nodes():
            assert refreshed.successors(node) == frozenset(graph.successors(node))
            assert refreshed.predecessors(node) == frozenset(
                graph.predecessors(node)
            )
        for node in sharded.node_table:
            assert refreshed.id_of(node) == sharded.id_of(node)
        for pattern in (
            build_pattern({"x": "A", "y": "B"}, [("x", "y")]),
            build_pattern(
                {"x": "B", "y": "C", "z": "A"}, [("x", "y"), ("y", "z")]
            ),
        ):
            assert (
                sharded_match(pattern, refreshed).edge_matches
                == match(pattern, graph).edge_matches
            )

    def test_only_owning_shards_rebuilt(self):
        rng = random.Random(13)
        graph = random_labeled_graph(rng, 40, 90)
        sharded = ShardedGraph(graph, num_shards=4)
        # One edge between existing nodes: only the source's home shard
        # (plus, for a cross edge, nobody else) is rebuilt.
        source = next(iter(graph.nodes()))
        target = next(
            node for node in graph.nodes()
            if node != source and not graph.has_edge(source, node)
        )
        base = graph.version
        graph.add_edge(source, target)
        refreshed = sharded.refreshed(graph, graph.edge_changes_since(base))
        owner = refreshed.partition.shard_of(source)
        for index in range(4):
            if index == owner:
                assert refreshed.shard(index) is not sharded.shard(index)
            else:
                assert refreshed.shard(index) is sharded.shard(index)

    def test_refreshed_snapshot_survives_process_pool(self):
        # Refreshed sharded graphs ship to pool workers exactly like
        # freshly built ones (plain picklable state).
        import pickle

        rng = random.Random(19)
        graph = random_labeled_graph(rng, 30, 70)
        sharded = ShardedGraph(graph, num_shards=2)
        base = graph.version
        for op, source, target in _stream(rng, graph, 10, fresh_nodes=2):
            if op == "insert":
                graph.add_edge(source, target)
            else:
                graph.remove_edge(source, target)
        refreshed = sharded.refreshed(graph, graph.edge_changes_since(base))
        clone = pickle.loads(pickle.dumps(refreshed))
        assert clone.snapshot_token == refreshed.snapshot_token
        pattern = build_pattern({"x": "A", "y": "B"}, [("x", "y")])
        assert (
            sharded_match(pattern, clone, executor="thread", workers=2)
            .edge_matches
            == match(pattern, graph).edge_matches
        )

    def test_new_nodes_go_to_last_shard_preserving_ids(self):
        rng = random.Random(17)
        graph = random_labeled_graph(rng, 30, 70)
        sharded = ShardedGraph(graph, num_shards=3)
        base = graph.version
        anchor = next(iter(graph.nodes()))
        graph.add_edge("brand-new", anchor)
        refreshed = sharded.refreshed(graph, graph.edge_changes_since(base))
        assert refreshed.partition.shard_of("brand-new") == 2
        assert refreshed.id_of("brand-new") == len(sharded.node_table)
        for node in sharded.node_table:
            assert refreshed.id_of(node) == sharded.id_of(node)
        assert refreshed.has_edge("brand-new", anchor)


class TestViewSetDeltaPipeline:
    def test_per_view_stamps_move_only_for_changed_views(self):
        graph = build_graph(
            {1: "A", 2: "B", 3: "C", 4: "B"}, [(1, 2), (2, 3), (1, 4)]
        )
        views = ViewSet(_definitions())
        views.track(graph)
        stamps = {name: views.view_version(name) for name in views.names()}
        report = views.apply_delta(Delta().insert(4, 3))  # B->C: BC and ABC
        assert set(report.changed_views) == {"BC", "ABC"}
        assert views.view_version("AB") == stamps["AB"]
        assert views.view_version("BC") != stamps["BC"]
        assert views.view_version("ABC") != stamps["ABC"]
        mirror = graph.copy()
        mirror.add_edge(4, 3)
        for definition in views:
            assert (
                views.extension(definition.name).edge_matches
                == materialize(definition, mirror).edge_matches
            )

    def test_version_vector_and_uniqueness(self):
        views = ViewSet(_definitions())
        vector = views.version_vector(["AB", "BC"])
        assert len(vector) == 2
        assert len(set(views.version_vector())) == 3  # stamps are unique
        with pytest.raises(KeyError):
            views.view_version("missing")

    def test_rebind_extension_keeps_versions(self):
        graph = build_graph({1: "A", 2: "B"}, [(1, 2)])
        views = ViewSet(_definitions()[:1])
        frozen = graph.freeze()
        views.materialize(frozen)
        stamp = views.view_version("AB")
        version = views.version
        graph.add_edge(2, 1)
        refreshed = graph.freeze()
        rebound = bind_extension(views.extension("AB"), refreshed)
        views.rebind_extension(rebound)
        assert views.view_version("AB") == stamp
        assert views.version == version
        assert views.extension("AB").compact.token == refreshed.snapshot_token

    def test_track_twice_rejected_and_requires_tracking(self):
        graph = build_graph({1: "A", 2: "B"}, [(1, 2)])
        views = ViewSet(_definitions()[:1])
        with pytest.raises(ValueError):
            views.apply_delta(Delta().insert(1, 2))
        views.track(graph)
        with pytest.raises(ValueError):
            views.track(graph)


class TestEngineRetention:
    @pytest.fixture
    def setup(self):
        graph = build_graph(
            {1: "A", 2: "B", 3: "C", 4: "B", 5: "A"},
            [(1, 2), (2, 3), (1, 4), (5, 2)],
        )
        definitions = _definitions()[:2]  # AB, BC
        tracker = IncrementalViewSet(definitions, graph)
        engine = QueryEngine(ViewSet(definitions), graph=graph)
        engine.attach_maintenance(tracker)
        q_ab = build_pattern({"x": "A", "y": "B"}, [("x", "y")])
        q_bc = build_pattern({"x": "B", "y": "C"}, [("x", "y")])
        return graph, tracker, engine, q_ab, q_bc

    def test_update_retains_answers_over_unchanged_views(self, setup):
        _, tracker, engine, q_ab, q_bc = setup
        engine.answer(q_ab)
        engine.answer(q_bc)
        tracker.insert_edge(4, 3)  # B->C: touches BC only
        retained = engine.answer(q_ab)
        assert retained.stats.cache_hit
        refreshed = engine.answer(q_bc)
        assert not refreshed.stats.cache_hit
        assert refreshed.edge_matches[("x", "y")] == {(2, 3), (4, 3)}
        hits = engine.cache_stats()["answers"]["hits"]
        assert hits >= 1

    def test_irrelevant_update_retains_everything(self, setup):
        _, tracker, engine, q_ab, q_bc = setup
        engine.answer(q_ab)
        engine.answer(q_bc)
        tracker.insert_edge(3, 3 + 100)  # C -> unlabeled: irrelevant
        assert engine.answer(q_ab).stats.cache_hit
        assert engine.answer(q_bc).stats.cache_hit

    def test_snapshot_and_extensions_stay_token_coherent(self, setup):
        _, tracker, engine, q_ab, q_bc = setup
        engine.answer(q_ab)
        engine.answer(q_bc)
        before = engine.snapshot().snapshot_token
        assert engine.views.snapshot_token == before
        tracker.insert_edge(4, 3)
        engine.answer(q_ab)  # triggers the batch refresh
        snapshot = engine.snapshot()
        assert snapshot.extends_token == before
        # Changed views re-bound, unchanged views re-stamped: every
        # extension carries the refreshed token, so MatchJoin's
        # id-space fast path re-engages across the catalog.
        assert engine.views.snapshot_token == snapshot.snapshot_token

    def test_direct_answers_keyed_on_graph_version(self, setup):
        graph, tracker, engine, _, _ = setup
        uncovered = build_pattern({"x": "C", "y": "B"}, [("x", "y")])
        first = engine.answer(uncovered)
        assert first.stats.strategy == "direct"
        assert engine.answer(uncovered).stats.cache_hit
        tracker.insert_edge(3, 4)  # C->B changes the direct answer
        second = engine.answer(uncovered)
        assert not second.stats.cache_hit
        assert second.edge_matches[("x", "y")] == {(3, 4)}

    def test_batched_delta_single_refresh(self, setup):
        graph, tracker, engine, q_ab, q_bc = setup
        engine.answer(q_ab)
        engine.answer(q_bc)
        report = tracker.apply_delta(
            Delta().insert(4, 3).delete(4, 3).insert(4, 3)
        )
        assert report.applied == 3
        assert set(report.changed_views) == {"BC"}
        assert engine.answer(q_ab).stats.cache_hit
        assert engine.answer(q_bc).edge_matches[("x", "y")] == {(2, 3), (4, 3)}

    def test_sharded_engine_refreshes_owning_shards_only(self):
        rng = random.Random(23)
        graph = random_labeled_graph(rng, 30, 70)
        definitions = _definitions()[:2]
        tracker = IncrementalViewSet(definitions, graph)
        engine = QueryEngine(
            ViewSet(definitions), graph=graph, shards=3
        )
        engine.attach_maintenance(tracker)
        q_ab = build_pattern({"x": "A", "y": "B"}, [("x", "y")])
        engine.answer(q_ab)
        first = engine.snapshot()
        source = next(
            node for node in tracker.graph.nodes()
            if not tracker.graph.has_edge(node, node)
        )
        target = next(
            node for node in tracker.graph.nodes()
            if node != source and not tracker.graph.has_edge(source, node)
        )
        tracker.insert_edge(source, target)
        result = engine.answer(q_ab)
        second = engine.snapshot()
        assert second.extends_token == first.snapshot_token
        owner = second.partition.shard_of(source)
        for index in range(second.num_shards):
            if index != owner:
                assert second.shard(index) is first.shard(index)
        mirror = tracker.graph
        assert result.edge_matches == match(q_ab, mirror).edge_matches


class TestMaintainCli:
    def test_maintain_replays_and_verifies(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_graph
        from repro.views.io import write_viewset

        graph = build_graph(
            {1: "A", 2: "B", 3: "C", 4: "B", 5: "A"},
            [(1, 2), (2, 3), (1, 4)],
        )
        views = ViewSet(_definitions())
        graph_path = tmp_path / "graph.json"
        views_path = tmp_path / "views.json"
        updates_path = tmp_path / "updates.txt"
        write_graph(graph, graph_path)
        write_viewset(views, views_path)
        updates_path.write_text("+ 4 3\n- 2 3\n+ 5 4\n- 9 9\n")
        code = main(
            [
                "maintain",
                "--graph", str(graph_path),
                "--views", str(views_path),
                "--updates", str(updates_path),
                "--batch", "2",
                "--verify",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "replayed 3 updates (1 skipped)" in captured.out
        assert "verified" in captured.out

    def test_maintain_json_payload(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.graph.io import write_graph
        from repro.views.io import write_viewset

        graph = build_graph(
            {1: "A", 2: "B", 3: "C", 4: "B"}, [(1, 2), (2, 3)]
        )
        views = ViewSet(_definitions())
        graph_path = tmp_path / "graph.json"
        views_path = tmp_path / "views.json"
        updates_path = tmp_path / "updates.txt"
        write_graph(graph, graph_path)
        write_viewset(views, views_path)
        updates_path.write_text("+ 4 3\n+ 1 4\n")
        code = main(
            [
                "maintain",
                "--graph", str(graph_path),
                "--views", str(views_path),
                "--updates", str(updates_path),
                "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["updates"]["applied"] == 2
        assert payload["snapshot"]["refreshes"] >= 1
        assert set(payload["views"]) == {"AB", "BC", "ABC"}
        for counters in payload["views"].values():
            assert "retained_batches" in counters


class TestDeletionPaths:
    """Deletions are *incremental*, not recompute-on-delete: the
    witness-counter cascade (``IncrementalView._after_delete``) prunes
    exactly the matches that lost their last witness.  These tests pin
    that down -- delete-heavy streams must never trigger a recompute,
    must leave every backend's view of the extension equal to a
    from-scratch rematerialization, and delete-then-reinsert round
    trips must restore the original extension exactly."""

    def _delete_heavy_stream(self, rng, live, rounds, delete_bias=0.8):
        """Ops valid against the evolving tracker graph: mostly
        deletions of present edges, a few insertions to keep churn."""
        ops = []
        present = set(live.edges())
        for _ in range(rounds):
            if present and rng.random() < delete_bias:
                edge = rng.choice(sorted(present, key=repr))
                ops.append(("delete", *edge))
                present.discard(edge)
            else:
                source = rng.randrange(len(live))
                target = rng.randrange(len(live))
                if source == target or (source, target) in present:
                    continue
                ops.append(("insert", source, target))
                present.add((source, target))
        return ops

    @pytest.mark.parametrize("seed", range(3))
    def test_delete_heavy_stream_equal_on_every_backend(self, seed):
        """After every delete-heavy batch, the maintained extension
        equals rematerialization on the dict graph, on a frozen
        ``CompactGraph`` and on a ``ShardedGraph`` composite."""
        rng = random.Random(seed + 500)
        graph = random_labeled_graph(rng, 24, 70)
        definitions = _definitions()
        tracked = IncrementalViewSet(definitions, graph)
        mirror = graph.copy()
        ops = self._delete_heavy_stream(rng, tracked.graph, 40)
        index = 0
        while index < len(ops):
            take = rng.randrange(1, 6)
            chunk = ops[index : index + take]
            index += take
            report = tracked.apply_delta(Delta(chunk))
            assert report.applied == len(chunk)
            for op, source, target in chunk:
                if op == "insert":
                    mirror.add_edge(source, target)
                else:
                    mirror.remove_edge(source, target)
            compact = CompactGraph(mirror, mirror.version)
            sharded = ShardedGraph(mirror, num_shards=2)
            for definition in definitions:
                maintained = tracked.extension(definition.name).edge_matches
                for backend in (mirror, compact, sharded):
                    fresh = materialize(definition, backend)
                    assert maintained == fresh.edge_matches, (
                        seed,
                        definition.name,
                        type(backend).__name__,
                    )

    @pytest.mark.parametrize("seed", range(3))
    def test_pure_deletion_stream_never_recomputes(self, seed):
        """A pure-deletion stream exercises only the counter cascade:
        ``deletions`` climbs, ``recomputes`` stays zero."""
        rng = random.Random(seed + 900)
        graph = random_labeled_graph(rng, 20, 60)
        definitions = _definitions()
        tracked = IncrementalViewSet(definitions, graph)
        mirror = graph.copy()
        edges = sorted(tracked.graph.edges(), key=repr)
        rng.shuffle(edges)
        doomed = edges[: len(edges) // 2]
        index = 0
        while index < len(doomed):
            take = rng.randrange(1, 5)
            chunk = doomed[index : index + take]
            index += take
            tracked.apply_delta(
                Delta(("delete", source, target) for source, target in chunk)
            )
            for source, target in chunk:
                mirror.remove_edge(source, target)
            for definition in definitions:
                fresh = materialize(definition, mirror)
                assert (
                    tracked.extension(definition.name).edge_matches
                    == fresh.edge_matches
                )
        totals = {name: stats.snapshot() for name, stats in tracked.stats().items()}
        assert sum(counters["deletions"] for counters in totals.values()) == len(
            doomed
        ) * len(definitions)
        for name, counters in totals.items():
            assert counters["recomputes"] == 0, (name, counters)
            assert counters["insertions"] == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_delete_then_reinsert_round_trip(self, seed):
        """Deleting a batch of edges and reinserting the same batch
        restores every extension exactly (same match sets -- the
        cascade and the revival path are true inverses here)."""
        rng = random.Random(seed + 1300)
        graph = random_labeled_graph(rng, 22, 64)
        definitions = _definitions()
        tracked = IncrementalViewSet(definitions, graph)
        original = {
            definition.name: dict(
                tracked.extension(definition.name).edge_matches
            )
            for definition in definitions
        }
        edges = sorted(tracked.graph.edges(), key=repr)
        rng.shuffle(edges)
        batch = edges[: max(4, len(edges) // 3)]
        tracked.apply_delta(
            Delta(("delete", source, target) for source, target in batch)
        )
        # Reinsert in a different order: set semantics, not a transcript.
        rng.shuffle(batch)
        report = tracked.apply_delta(
            Delta(("insert", source, target) for source, target in batch)
        )
        assert report.applied == len(batch)
        for definition in definitions:
            assert (
                tracked.extension(definition.name).edge_matches
                == original[definition.name]
            ), (seed, definition.name)

    def test_deleting_every_edge_then_rebuilding(self):
        """Edge case: drain the graph empty (every view goes empty via
        the cascade), then reinsert everything -- extensions come back
        equal to the original materialization."""
        rng = random.Random(4242)
        graph = random_labeled_graph(rng, 14, 40)
        definitions = _definitions()
        tracked = IncrementalViewSet(definitions, graph)
        original = {
            definition.name: dict(
                tracked.extension(definition.name).edge_matches
            )
            for definition in definitions
        }
        edges = sorted(tracked.graph.edges(), key=repr)
        tracked.apply_delta(
            Delta(("delete", source, target) for source, target in edges)
        )
        for definition in definitions:
            assert not tracked.extension(definition.name).edge_matches or all(
                not pairs
                for pairs in tracked.extension(definition.name)
                .edge_matches.values()
            )
        tracked.apply_delta(
            Delta(("insert", source, target) for source, target in edges)
        )
        for definition in definitions:
            assert (
                tracked.extension(definition.name).edge_matches
                == original[definition.name]
            ), definition.name
