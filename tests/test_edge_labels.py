"""Tests for the edge-label dummy-node reduction (Section II, Remark 2)."""

import pytest

from repro.graph.edge_labels import (
    decode_edge_matches,
    dummy_label,
    encode_graph,
    encode_pattern,
)
from repro.simulation import match
from repro.views import ViewDefinition, ViewSet
from repro.core.containment import contains
from repro.core.matchjoin import match_join


def social_graph():
    """People connected by 'follows' and 'blocks' edges."""
    return encode_graph(
        nodes=[(name, "person") for name in ("ann", "bob", "cat", "dan")],
        triples=[
            ("ann", "follows", "bob"),
            ("bob", "follows", "cat"),
            ("ann", "blocks", "dan"),
            ("cat", "follows", "ann"),
        ],
    )


class TestEncoding:
    def test_graph_structure(self):
        g = social_graph()
        # 4 people + 4 dummies; 8 encoded edges.
        assert g.num_nodes == 8
        assert g.num_edges == 8
        dummies = [n for n in g.nodes() if isinstance(n, tuple)]
        assert len(dummies) == 4
        for dummy in dummies:
            assert any(
                label.startswith("edge:") for label in g.labels(dummy)
            )

    def test_pattern_structure(self):
        pattern, edge_map = encode_pattern(
            nodes={"x": "person", "y": "person"},
            triples=[("x", "follows", "y")],
        )
        assert pattern.num_nodes == 3
        assert pattern.num_edges == 2
        (in_edge, out_edge) = edge_map[("x", "follows", "y")]
        assert in_edge[0] == "x"
        assert out_edge[1] == "y"

    def test_dummy_label_reserved(self):
        assert dummy_label("follows") == "edge:follows"


class TestMatchingOnEncodedGraphs:
    def test_edge_label_selectivity(self):
        g = social_graph()
        pattern, edge_map = encode_pattern(
            nodes={"x": "person", "y": "person"},
            triples=[("x", "follows", "y")],
        )
        result = match(pattern, g)
        decoded = decode_edge_matches(result, edge_map)
        assert decoded[("x", "follows", "y")] == {
            ("ann", "bob"), ("bob", "cat"), ("cat", "ann"),
        }

    def test_different_label_different_matches(self):
        g = social_graph()
        pattern, edge_map = encode_pattern(
            nodes={"x": "person", "y": "person"},
            triples=[("x", "blocks", "y")],
        )
        decoded = decode_edge_matches(match(pattern, g), edge_map)
        assert decoded[("x", "blocks", "y")] == {("ann", "dan")}

    def test_two_hop_labeled_pattern(self):
        g = social_graph()
        pattern, edge_map = encode_pattern(
            nodes={"x": "person", "y": "person", "z": "person"},
            triples=[("x", "follows", "y"), ("y", "follows", "z")],
        )
        decoded = decode_edge_matches(match(pattern, g), edge_map)
        # The follows-cycle makes every follows edge part of a 2-chain.
        assert decoded[("x", "follows", "y")] == {
            ("ann", "bob"), ("bob", "cat"), ("cat", "ann"),
        }

    def test_unmatched_label(self):
        g = social_graph()
        pattern, edge_map = encode_pattern(
            nodes={"x": "person", "y": "person"},
            triples=[("x", "admires", "y")],
        )
        result = match(pattern, g)
        assert not result


class TestViewsOverEncodedGraphs:
    def test_matchjoin_on_edge_labeled_input(self):
        """The whole view pipeline works on encoded graphs unchanged."""
        g = social_graph()
        query, edge_map = encode_pattern(
            nodes={"x": "person", "y": "person", "z": "person"},
            triples=[("x", "follows", "y"), ("y", "follows", "z")],
        )
        view_pattern, _ = encode_pattern(
            nodes={"a": "person", "b": "person"},
            triples=[("a", "follows", "b")],
        )
        views = ViewSet([ViewDefinition("follows", view_pattern)])
        views.materialize(g)
        containment = contains(query, views)
        assert containment.holds
        result = match_join(query, containment, views)
        assert result.edge_matches == match(query, g).edge_matches
        decoded = decode_edge_matches(result, edge_map)
        assert ("ann", "bob") in decoded[("x", "follows", "y")]
