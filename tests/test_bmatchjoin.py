"""Tests for BMatchJoin (Section VI-A; Theorems 8, 9)."""

import random

import pytest

from repro.core.bounded.bcontainment import bounded_contains
from repro.core.bounded.bmatchjoin import (
    bounded_match_join,
    merge_initial_sets_bounded,
)
from repro.errors import NotContainedError
from repro.graph import ANY, BoundedPattern
from repro.simulation import bounded_match
from repro.views import ViewDefinition, ViewSet

from helpers import (
    build_bounded,
    build_graph,
    random_labeled_graph,
    random_pattern,
)


def chain_setup():
    """G: A -> x -> B -> C chain; Qb: A -(2)-> B -(1)-> C."""
    g = build_graph(
        {1: "A", 2: "X", 3: "B", 4: "C"}, [(1, 2), (2, 3), (3, 4)]
    )
    q = build_bounded(
        {"a": "A", "b": "B", "c": "C"}, [("a", "b", 2), ("b", "c", 1)]
    )
    views = ViewSet(
        [
            ViewDefinition(
                "Vab", build_bounded({"a": "A", "b": "B"}, [("a", "b", 2)])
            ),
            ViewDefinition(
                "Vbc", build_bounded({"b": "B", "c": "C"}, [("b", "c", 1)])
            ),
        ]
    )
    views.materialize(g)
    return g, q, views


class TestBasics:
    def test_chain(self):
        g, q, views = chain_setup()
        containment = bounded_contains(q, views)
        assert containment.holds
        result = bounded_match_join(q, containment, views)
        direct = bounded_match(q, g)
        assert result.edge_matches == direct.edge_matches
        assert result.edge_matches[("a", "b")] == {(1, 3)}

    def test_distance_filter_applies(self):
        """A view with a looser bound materializes distant pairs that the
        query edge's own bound must filter out through I(V)."""
        g = build_graph(
            {1: "A", 2: "X", 3: "B", 4: "B"}, [(1, 2), (2, 3), (1, 4)]
        )
        # Pairs (1,4) at distance 1 and (1,3) at distance 2.
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", 1)])
        loose_view = ViewDefinition(
            "Vloose", build_bounded({"a": "A", "b": "B"}, [("a", "b", 3)])
        )
        views = ViewSet([loose_view])
        views.materialize(g)
        assert views.extension("Vloose").pairs_of(("a", "b")) == {(1, 3), (1, 4)}
        containment = bounded_contains(q, views)
        assert containment.holds
        initial = merge_initial_sets_bounded(q, containment, views.extensions())
        assert initial[("a", "b")] == {(1, 4)}
        result = bounded_match_join(q, containment, views)
        assert result.edge_matches[("a", "b")] == {(1, 4)}
        assert result.edge_matches == bounded_match(q, g).edge_matches

    def test_star_bound_keeps_all_pairs(self):
        g = build_graph(
            {1: "A", 2: "X", 3: "B"}, [(1, 2), (2, 3)]
        )
        q = build_bounded({"a": "A", "b": "B"}, [("a", "b", ANY)])
        view = ViewDefinition(
            "V", build_bounded({"a": "A", "b": "B"}, [("a", "b", ANY)])
        )
        views = ViewSet([view])
        views.materialize(g)
        containment = bounded_contains(q, views)
        assert containment.holds
        result = bounded_match_join(q, containment, views)
        assert result.edge_matches[("a", "b")] == {(1, 3)}

    def test_type_guard(self):
        g, q, views = chain_setup()
        containment = bounded_contains(q, views)
        with pytest.raises(TypeError):
            bounded_match_join(q.unbounded_pattern(), containment, views)

    def test_not_contained_raises(self):
        g, q, views = chain_setup()
        sub = views.subset(["Vab"])
        containment = bounded_contains(q, sub)
        with pytest.raises(NotContainedError):
            bounded_match_join(q, containment, sub)


class TestExample8ViaViews:
    def test_bounded_fig3_query(self):
        g = build_graph(
            {
                "PM1": "PM", "DB1": "DB", "DB2": "DB", "AI1": "AI", "AI2": "AI",
                "SE1": "SE", "SE2": "SE", "Bio1": "Bio",
            },
            [
                ("PM1", "AI2"), ("DB1", "AI2"), ("DB2", "AI2"),
                ("AI1", "SE1"), ("AI2", "SE2"), ("SE1", "DB2"), ("SE2", "DB1"),
                ("AI2", "Bio1"), ("SE1", "Bio1"), ("PM1", "AI1"),
            ],
        )
        q = BoundedPattern()
        for node, label in [
            ("PM", "PM"), ("AI", "AI"), ("DB", "DB"), ("SE", "SE"), ("Bio", "Bio"),
        ]:
            q.add_node(node, label)
        q.add_edge("PM", "AI", 1)
        q.add_edge("DB", "AI", 1)
        q.add_edge("AI", "SE", 1)
        q.add_edge("SE", "DB", 1)
        q.add_edge("AI", "Bio", 2)
        views = ViewSet(
            [
                ViewDefinition(f"E{i}", q.subpattern([edge]))
                for i, edge in enumerate(q.edges())
            ]
        )
        views.materialize(g)
        containment = bounded_contains(q, views)
        assert containment.holds
        result = bounded_match_join(q, containment, views)
        direct = bounded_match(q, g)
        assert result.edge_matches == direct.edge_matches
        # Example 8's headline fact: (AI1, Bio1) matches through a
        # length-2 path.
        assert ("AI1", "Bio1") in result.edge_matches[("AI", "Bio")]


class TestTheorem8RandomInstances:
    @pytest.mark.parametrize("seed", range(25))
    def test_view_based_equals_direct(self, seed):
        rng = random.Random(seed + 500)
        g = random_labeled_graph(rng, rng.randint(8, 30), rng.randint(10, 90))
        base = random_pattern(rng, rng.randint(2, 4), rng.randint(2, 6))
        q = BoundedPattern()
        for node in base.nodes():
            q.add_node(node, base.condition(node))
        for source, target in base.edges():
            q.add_edge(source, target, rng.choice([1, 2, 3, ANY]))
        views = ViewSet()
        for i, edge in enumerate(q.edges()):
            sub = q.subpattern([edge])
            if rng.random() < 0.3:
                # Loosen some view bounds; containment must still hold
                # and the I(V) filter must compensate.
                bound = sub.bound(edge)
                if bound is not ANY:
                    loose = q.subpattern([edge])
                    loose._bound[edge] = bound + rng.randint(1, 2)
                    sub = loose
            views.add(ViewDefinition(f"E{i}", sub))
        containment = bounded_contains(q, views)
        assert containment.holds
        views.materialize(g)
        direct = bounded_match(q, g)
        result = bounded_match_join(q, containment, views)
        assert result.edge_matches == direct.edge_matches
        naive = bounded_match_join(q, containment, views, optimized=False)
        assert naive.edge_matches == direct.edge_matches
