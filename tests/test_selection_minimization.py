"""Tests for workload-driven view selection and query minimization."""

import pytest

from repro.core.containment import contains
from repro.core.minimization import minimize
from repro.graph import Pattern
from repro.simulation import match
from repro.views import ViewDefinition, ViewSet
from repro.views.selection import (
    candidate_views_from_workload,
    select_views_for_workload,
)

from helpers import build_graph, build_pattern
from test_containment import fig4_query, fig4_views


class TestWorkloadSelection:
    def workload(self):
        q1 = build_pattern(
            {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
        )
        q2 = build_pattern(
            {"a": "A", "b": "B", "d": "D"}, [("a", "b"), ("b", "d")]
        )
        return [q1, q2]

    def test_default_candidates_cover(self):
        queries = self.workload()
        selected, per_query = select_views_for_workload(queries)
        for qi, query in enumerate(queries):
            subset = selected.subset(per_query[qi])
            assert contains(query, subset).holds

    def test_shared_edges_reuse_views(self):
        queries = self.workload()
        selected, per_query = select_views_for_workload(queries)
        # The shared (A,B) edge should not force two separate views.
        all_names = set(selected.names())
        assert len(all_names) <= 4

    def test_candidate_pool_deduplicates(self):
        queries = self.workload()
        pool = candidate_views_from_workload(queries)
        # (a,b) appears in both queries but yields one candidate.
        edge_views = [n for n in pool.names() if n.startswith("edge_")]
        assert len(edge_views) == 3  # AB, BC, BD

    def test_explicit_candidates(self):
        q = fig4_query()
        selected, per_query = select_views_for_workload([q], fig4_views())
        assert contains(q, selected.subset(per_query[0])).holds
        # Greedy over Fig. 4 finds the 2-view cover {V5, V6}.
        assert len(selected) == 2

    def test_uncoverable_workload_raises(self):
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        bad_pool = ViewSet(
            [ViewDefinition("v", build_pattern({"c": "C", "d": "D"}, [("c", "d")]))]
        )
        with pytest.raises(ValueError):
            select_views_for_workload([q], bad_pool)

    def test_max_views_enforced(self):
        q = fig4_query()
        singles = ViewSet(
            ViewDefinition(f"e{i}", q.subpattern([edge]))
            for i, edge in enumerate(q.edges())
        )
        with pytest.raises(ValueError):
            select_views_for_workload([q], singles, max_views=2)


class TestMinimization:
    def test_parallel_branches_collapse(self):
        q = build_pattern(
            {"a": "A", "b1": "B", "b2": "B"}, [("a", "b1"), ("a", "b2")]
        )
        outcome = minimize(q)
        assert outcome.minimized.num_edges == 1
        assert outcome.removed_edges == 1
        assert outcome.removed_nodes == 1

    def test_mapping_reconstructs_result(self):
        q = build_pattern(
            {"a": "A", "b1": "B", "b2": "B"}, [("a", "b1"), ("a", "b2")]
        )
        outcome = minimize(q)
        g = build_graph({1: "A", 2: "B", 3: "B"}, [(1, 2), (1, 3)])
        full = match(q, g)
        small = match(outcome.minimized, g)
        for edge in q.edges():
            reconstructed = set()
            for target_edge in outcome.mapping[edge]:
                reconstructed |= small.edge_matches[target_edge]
            assert reconstructed == full.edge_matches[edge]

    def test_irreducible_query_unchanged(self):
        q = fig4_query()
        outcome = minimize(q)
        assert outcome.minimized.num_edges == q.num_edges
        assert outcome.removed_edges == 0

    def test_duplicate_cycle_branches(self):
        # Two identical 2-cycles hanging off one hub collapse to one.
        q = Pattern()
        q.add_node("hub", "H")
        for i in (1, 2):
            q.add_node(f"x{i}", "X")
            q.add_edge("hub", f"x{i}")
            q.add_edge(f"x{i}", "hub")
        outcome = minimize(q)
        assert outcome.minimized.num_edges == 2
        assert outcome.minimized.num_nodes == 2

    def test_minimized_equivalent_on_random_graphs(self):
        import random

        from helpers import random_labeled_graph

        q = build_pattern(
            {"a": "A", "b1": "B", "b2": "B", "c": "C"},
            [("a", "b1"), ("a", "b2"), ("b1", "c"), ("b2", "c")],
        )
        outcome = minimize(q)
        assert outcome.minimized.num_edges < q.num_edges
        rng = random.Random(5)
        for _ in range(10):
            g = random_labeled_graph(rng, 20, 60)
            full = match(q, g)
            small = match(outcome.minimized, g)
            assert bool(full) == bool(small)
            if full:
                for edge in q.edges():
                    reconstructed = set()
                    for target_edge in outcome.mapping[edge]:
                        reconstructed |= small.edge_matches[target_edge]
                    assert reconstructed == full.edge_matches[edge]
