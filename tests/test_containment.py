"""Tests for view matches and pattern containment (contain, Proposition 7).

The anchor fixtures are the paper's own examples: Fig. 1 / Example 3,
Fig. 4 / Example 5, and Fig. 3 / Example 4.
"""

import pytest

from repro.core.containment import contains, equivalent, query_contained
from repro.core.view_match import view_match_simulation
from repro.graph import Pattern
from repro.views import ViewDefinition

from helpers import build_pattern


# ----------------------------------------------------------------------
# Fig. 4 fixture: Qs over labels A..E and seven views V1..V7
# ----------------------------------------------------------------------
def fig4_query():
    return build_pattern(
        {"A": "A", "B": "B", "C": "C", "D": "D", "E": "E"},
        [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D"), ("B", "E")],
    )


def fig4_views():
    specs = {
        "V1": ({"C": "C", "D": "D"}, [("C", "D")]),
        "V2": ({"B": "B", "E": "E"}, [("B", "E")]),
        "V3": ({"A": "A", "B": "B", "C": "C"}, [("A", "B"), ("A", "C")]),
        "V4": ({"B": "B", "C": "C", "D": "D"}, [("B", "D"), ("C", "D")]),
        "V5": ({"B": "B", "D": "D", "E": "E"}, [("B", "D"), ("B", "E")]),
        "V6": (
            {"A": "A", "B": "B", "C": "C", "D": "D"},
            [("A", "B"), ("A", "C"), ("C", "D")],
        ),
        "V7": (
            {"A": "A", "B": "B", "C": "C", "D": "D"},
            [("A", "B"), ("A", "C"), ("B", "D")],
        ),
    }
    return [ViewDefinition(name, build_pattern(*spec)) for name, spec in specs.items()]


#: Example 5's view-match table.
FIG4_EXPECTED = {
    "V1": {("C", "D")},
    "V2": {("B", "E")},
    "V3": {("A", "B"), ("A", "C")},
    "V4": {("B", "D"), ("C", "D")},
    "V5": {("B", "D"), ("B", "E")},
    "V6": {("A", "B"), ("A", "C"), ("C", "D")},
    "V7": {("A", "B"), ("A", "C"), ("B", "D")},
}


class TestViewMatchFig4:
    @pytest.mark.parametrize("name", sorted(FIG4_EXPECTED))
    def test_example_5_table(self, name):
        query = fig4_query()
        view = next(v for v in fig4_views() if v.name == name)
        match = view_match_simulation(query, view)
        assert match.covered == FIG4_EXPECTED[name]

    def test_union_covers_query(self):
        query = fig4_query()
        covered = set()
        for view in fig4_views():
            covered |= view_match_simulation(query, view).covered
        assert covered == query.edge_set()


class TestContainFig4:
    def test_contains_holds(self):
        result = contains(fig4_query(), fig4_views())
        assert result.holds
        assert result.uncovered == frozenset()
        assert set(result.mapping) == fig4_query().edge_set()

    def test_mapping_entries_point_to_covering_views(self):
        result = contains(fig4_query(), fig4_views())
        for edge, refs in result.mapping.items():
            assert refs, f"empty λ for {edge}"
            for view_name, _ in refs:
                assert edge in FIG4_EXPECTED[view_name]

    def test_not_contained_without_v2_and_v5(self):
        views = [v for v in fig4_views() if v.name not in ("V2", "V5")]
        result = contains(fig4_query(), views)
        assert not result.holds
        assert result.uncovered == frozenset({("B", "E")})


class TestContainFig1:
    def test_example_3(self):
        query = build_pattern(
            {"PM": "PM", "DBA1": "DBA", "DBA2": "DBA", "PRG1": "PRG", "PRG2": "PRG"},
            [
                ("PM", "DBA1"), ("PM", "PRG2"), ("DBA1", "PRG1"),
                ("PRG1", "DBA2"), ("DBA2", "PRG2"), ("PRG2", "DBA1"),
            ],
        )
        v1 = build_pattern(
            {"PM": "PM", "DBA": "DBA", "PRG": "PRG"},
            [("PM", "DBA"), ("PM", "PRG")],
        )
        v2 = build_pattern(
            {"DBA": "DBA", "PRG": "PRG"}, [("DBA", "PRG"), ("PRG", "DBA")]
        )
        result = contains(
            query, [ViewDefinition("V1", v1), ViewDefinition("V2", v2)]
        )
        assert result.holds
        # The cycle edges must come from V2, the PM edges from V1.
        for edge in [("DBA1", "PRG1"), ("DBA2", "PRG2")]:
            assert all(name == "V2" for name, _ in result.mapping[edge])
        for edge in [("PM", "DBA1"), ("PM", "PRG2")]:
            assert all(name == "V1" for name, _ in result.mapping[edge])


class TestContainFig3:
    def test_example_4_mapping(self):
        query = build_pattern(
            {"PM": "PM", "AI": "AI", "DB": "DB", "SE": "SE", "Bio": "Bio"},
            [("PM", "AI"), ("AI", "Bio"), ("DB", "AI"), ("AI", "SE"), ("SE", "DB")],
        )
        v1 = build_pattern(
            {"PM": "PM", "AI": "AI", "Bio": "Bio"}, [("AI", "Bio"), ("PM", "AI")]
        )
        v2 = build_pattern(
            {"DB": "DB", "AI": "AI", "SE": "SE"},
            [("DB", "AI"), ("AI", "SE"), ("SE", "DB")],
        )
        result = contains(
            query, [ViewDefinition("V1", v1), ViewDefinition("V2", v2)]
        )
        assert result.holds
        assert {name for name, _ in result.mapping[("PM", "AI")]} == {"V1"}
        assert {name for name, _ in result.mapping[("DB", "AI")]} == {"V2"}


class TestQueryContainment:
    def test_identical_patterns_contained(self):
        q = fig4_query()
        assert query_contained(q, fig4_query())

    def test_subsumed_by_smaller_view(self):
        # Q: A->B->C is contained in V: B->C? No: edge (A,B) uncovered.
        q = build_pattern({"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")])
        v = build_pattern({"b": "B", "c": "C"}, [("b", "c")])
        assert not query_contained(q, v)

    def test_duplicate_branch_contained_in_single_branch(self):
        # Q has two parallel A->B branches; V has one.
        q = build_pattern(
            {"a": "A", "b1": "B", "b2": "B"}, [("a", "b1"), ("a", "b2")]
        )
        v = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        assert query_contained(q, v)
        assert query_contained(v, q)
        assert equivalent(q, v)

    def test_structural_restriction_blocks_containment(self):
        # V requires B to have a C-successor; Q does not, so some match
        # of Q's (A,B) edge need not appear in V's extension.
        q = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        v = build_pattern(
            {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
        )
        assert not query_contained(q, v)
        # And the other direction fails too: v's (b, c) edge has no
        # counterpart in q.
        assert not query_contained(v, q)

    def test_cycle_not_contained_in_dag(self):
        cyc = build_pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        dag = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        # The DAG view covers the (a,b) edge but not (b,a).
        assert not query_contained(cyc, dag)
        # The cyclic view's extension only has pairs on cycles, which
        # need not include all matches of the DAG's edge.
        assert not query_contained(dag, cyc)


class TestContainmentObject:
    def test_bool_protocol(self):
        result = contains(fig4_query(), fig4_views())
        assert bool(result) is True

    def test_views_used_order(self):
        result = contains(fig4_query(), fig4_views())
        assert set(result.views_used()) <= {f"V{i}" for i in range(1, 8)}

    def test_empty_view_list(self):
        result = contains(fig4_query(), [])
        assert not result.holds
        assert result.uncovered == fig4_query().edge_set()
