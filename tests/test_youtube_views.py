"""Tests for the Fig. 7 YouTube view suite and predicate-view pipeline."""

import pytest

from repro.core.containment import contains
from repro.core.matchjoin import match_join
from repro.core.view_match import view_match_simulation
from repro.datasets import youtube_graph, youtube_views
from repro.graph import P, Pattern
from repro.simulation import match
from repro.views import ViewDefinition


class TestSuiteShape:
    def test_twelve_named_views(self):
        views = youtube_views()
        assert views.names() == [f"P{i}" for i in range(1, 13)]

    def test_all_views_use_figure_attributes(self):
        views = youtube_views()
        allowed = set("CALRV")
        for definition in views:
            for node in definition.pattern.nodes():
                condition = definition.pattern.condition(node)
                attrs = {atom.attr for atom in condition.atoms}
                assert attrs <= allowed
                assert attrs, f"{definition.name}:{node} has no predicate"

    def test_views_are_small(self):
        for definition in youtube_views():
            assert 2 <= definition.pattern.num_nodes <= 4
            assert 1 <= definition.pattern.num_edges <= 4


class TestPredicateCoverage:
    def test_view_covers_its_own_shape(self):
        """Every view, used as a query, is covered by itself."""
        views = youtube_views()
        for definition in views:
            query = definition.pattern
            self_match = view_match_simulation(query, definition)
            assert self_match.covered == query.edge_set(), definition.name

    def test_weaker_condition_does_not_cover(self):
        """A query node with a weaker condition than the view's cannot
        be covered by that view (coverage needs equivalence)."""
        views = youtube_views()
        p7 = views.definition("P7")  # COMEDY -> COMEDY & POPULAR
        query = Pattern()
        query.add_node("x", P("C") == "Comedy")
        query.add_node("y", P("C") == "Comedy")  # weaker than COMEDY & POPULAR
        query.add_edge("x", "y")
        assert view_match_simulation(query, p7).covered == frozenset()

    def test_stronger_condition_still_needs_equivalence(self):
        views = youtube_views()
        p7 = views.definition("P7")
        query = Pattern()
        query.add_node("x", P("C") == "Comedy")
        query.add_node("y", (P("C") == "Comedy") & (P("V") >= 20_000))
        query.add_edge("x", "y")
        # y's condition implies the view's (V >= 20K => V >= 10K) but is
        # not equivalent; the extension would contain pairs y rejects.
        assert view_match_simulation(query, p7).covered == frozenset()


class TestEndToEndSmall:
    def test_predicate_matchjoin_on_small_graph(self):
        graph = youtube_graph(4000, 11000, seed=9)
        views = youtube_views()
        views.materialize(graph)
        # P1's own shape as the query.
        query = views.definition("P1").pattern
        containment = contains(query, views)
        assert containment.holds
        result = match_join(query, containment, views)
        assert result.edge_matches == match(query, graph).edge_matches
