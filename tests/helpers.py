"""Shared test helpers: tiny builders and brute-force reference engines.

The reference engines compute maximum (bounded) simulations by naive
greatest-fixpoint iteration straight off the definitions in Section II
and Section VI -- quadratic scans, no indexes -- so the production
engines can be validated against something independently simple.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set

from repro.graph import ANY, BoundedPattern, DataGraph, Pattern


def build_graph(labeled_nodes, edges):
    """``labeled_nodes``: {node: label}; ``edges``: iterable of pairs."""
    g = DataGraph()
    for node, label in labeled_nodes.items():
        g.add_node(node, labels=label)
    for source, target in edges:
        g.add_edge(source, target)
    return g


def build_pattern(labeled_nodes, edges):
    q = Pattern()
    for node, label in labeled_nodes.items():
        q.add_node(node, label)
    for source, target in edges:
        q.add_edge(source, target)
    return q


def build_bounded(labeled_nodes, edges):
    """``edges``: iterable of (source, target, bound)."""
    q = BoundedPattern()
    for node, label in labeled_nodes.items():
        q.add_node(node, label)
    for source, target, bound in edges:
        q.add_edge(source, target, bound)
    return q


def reference_simulation(pattern: Pattern, graph: DataGraph) -> Optional[Dict]:
    """Naive greatest-fixpoint maximum simulation (child condition only)."""
    sim = {
        u: {
            v
            for v in graph.nodes()
            if pattern.condition(u).matches(graph.labels(v), graph.attrs(v))
        }
        for u in pattern.nodes()
    }
    changed = True
    while changed:
        changed = False
        for u in pattern.nodes():
            for u1 in pattern.successors(u):
                keep = {
                    v
                    for v in sim[u]
                    if any(w in sim[u1] for w in graph.successors(v))
                }
                if keep != sim[u]:
                    sim[u] = keep
                    changed = True
    if any(not s for s in sim.values()):
        return None
    return sim


def reference_edge_matches(pattern, graph, sim):
    return {
        (u, u1): {
            (v, w)
            for v in sim[u]
            for w in graph.successors(v)
            if w in sim[u1]
        }
        for (u, u1) in pattern.edges()
    }


def _within(graph, v, w, bound) -> bool:
    if bound is ANY:
        seen, stack = set(), list(graph.successors(v))
        while stack:
            n = stack.pop()
            if n == w:
                return True
            if n in seen:
                continue
            seen.add(n)
            stack.extend(graph.successors(n))
        return False
    return w in graph.descendants_within(v, bound)


def reference_bounded_simulation(
    pattern: BoundedPattern, graph: DataGraph
) -> Optional[Dict]:
    """Naive greatest-fixpoint maximum bounded simulation."""
    sim = {
        u: {
            v
            for v in graph.nodes()
            if pattern.condition(u).matches(graph.labels(v), graph.attrs(v))
        }
        for u in pattern.nodes()
    }
    changed = True
    while changed:
        changed = False
        for u in pattern.nodes():
            for u1 in pattern.successors(u):
                bound = pattern.bound((u, u1))
                keep = {
                    v
                    for v in sim[u]
                    if any(_within(graph, v, w, bound) for w in sim[u1])
                }
                if keep != sim[u]:
                    sim[u] = keep
                    changed = True
    if any(not s for s in sim.values()):
        return None
    return sim


def random_labeled_graph(
    rng: random.Random, num_nodes: int, num_edges: int, labels: str = "ABC"
) -> DataGraph:
    g = DataGraph()
    for i in range(num_nodes):
        g.add_node(i, labels=rng.choice(labels))
    for _ in range(num_edges):
        g.add_edge(rng.randrange(num_nodes), rng.randrange(num_nodes))
    return g


def random_pattern(
    rng: random.Random, num_nodes: int, num_edges: int, labels: str = "ABC"
) -> Pattern:
    q = Pattern()
    for i in range(num_nodes):
        q.add_node(i, rng.choice(labels))
    # Spanning-ish backbone keeps patterns connected.
    for i in range(1, num_nodes):
        j = rng.randrange(i)
        if rng.random() < 0.5:
            q.add_edge(j, i)
        else:
            q.add_edge(i, j)
    extra = max(0, num_edges - (num_nodes - 1))
    for _ in range(extra):
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a != b:
            q.add_edge(a, b)
    return q
