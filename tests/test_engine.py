"""Tests for the QueryEngine subsystem (planner, caches, batch executor)."""

import pytest

from repro import QueryEngine, match, match_join
from repro.core.containment import contains
from repro.core.minimal import minimal_views
from repro.engine.cache import LRUCache
from repro.engine.plan import pattern_key
from repro.errors import NotContainedError
from repro.graph.io import write_graph, write_pattern
from repro.simulation import bounded_match
from repro.views import ViewDefinition, ViewSet
from repro.views.io import write_viewset
from repro.views.maintenance import IncrementalViewSet

from helpers import build_bounded, build_graph, build_pattern


@pytest.fixture
def graph():
    return build_graph(
        {1: "A", 2: "B", 3: "C", 4: "B", 5: "A", 6: "C"},
        [(1, 2), (2, 3), (1, 4), (4, 3), (5, 4), (4, 6), (3, 6)],
    )


@pytest.fixture
def definitions():
    v1 = build_pattern({"a": "A", "b": "B"}, [("a", "b")])
    v2 = build_pattern({"b": "B", "c": "C"}, [("b", "c")])
    return [ViewDefinition("V1", v1), ViewDefinition("V2", v2)]


@pytest.fixture
def views(graph, definitions):
    vs = ViewSet(definitions)
    vs.materialize(graph)
    return vs


@pytest.fixture
def contained_query():
    return build_pattern(
        {"x": "A", "y": "B", "z": "C"}, [("x", "y"), ("y", "z")]
    )


@pytest.fixture
def uncovered_query():
    return build_pattern({"x": "C", "y": "A"}, [("x", "y")])


class TestPlanner:
    def test_contained_query_plans_matchjoin(self, views, contained_query):
        engine = QueryEngine(views)
        plan = engine.plan(contained_query)
        assert plan.strategy == "matchjoin"
        assert plan.uses_views
        assert set(plan.views_used) == {"V1", "V2"}
        assert plan.reason is None
        assert "matchjoin" in plan.explain()

    def test_not_contained_query_plans_direct(self, views, uncovered_query):
        engine = QueryEngine(views)
        plan = engine.plan(uncovered_query)
        assert plan.strategy == "direct"
        assert plan.reason == "not-contained"
        assert plan.views_used == ()
        assert "uncovered" in plan.explain()

    def test_isolated_node_query_plans_direct(self, views):
        query = build_pattern({"x": "A", "y": "B", "w": "C"}, [("x", "y")])
        engine = QueryEngine(views)
        plan = engine.plan(query)
        assert plan.strategy == "direct"
        assert plan.reason == "isolated-nodes"

    def test_selection_override(self, views, contained_query):
        engine = QueryEngine(views, selection="minimal")
        plan = engine.plan(contained_query, selection="minimum")
        assert plan.selection == "minimum"
        with pytest.raises(ValueError):
            engine.plan(contained_query, selection="bogus")

    def test_containment_decision_is_cached(self, views, contained_query):
        engine = QueryEngine(views)
        first = engine.plan(contained_query)
        second = engine.plan(contained_query)
        assert not first.containment_cached
        assert second.containment_cached
        # Structurally equal rebuild of the same query shares the entry.
        rebuilt = build_pattern(
            {"x": "A", "y": "B", "z": "C"}, [("x", "y"), ("y", "z")]
        )
        assert engine.plan(rebuilt).containment_cached
        assert engine.cache_stats()["containment"]["hits"] == 2

    def test_bounded_query_flagged(self, views):
        query = build_bounded({"x": "A", "y": "B"}, [("x", "y", 2)])
        engine = QueryEngine(views)
        assert engine.plan(query).bounded


class TestPatternKey:
    def test_equal_for_structurally_equal_queries(self):
        a = build_pattern({"x": "A", "y": "B"}, [("x", "y")])
        b = build_pattern({"y": "B", "x": "A"}, [("x", "y")])
        assert pattern_key(a) == pattern_key(b)

    def test_distinguishes_conditions_edges_and_bounds(self):
        base = build_pattern({"x": "A", "y": "B"}, [("x", "y")])
        other_label = build_pattern({"x": "A", "y": "C"}, [("x", "y")])
        reversed_edge = build_pattern({"x": "A", "y": "B"}, [("y", "x")])
        bounded = build_bounded({"x": "A", "y": "B"}, [("x", "y", 2)])
        keys = {
            pattern_key(base),
            pattern_key(other_label),
            pattern_key(reversed_edge),
            pattern_key(bounded),
        }
        assert len(keys) == 4


class TestExecution:
    def test_matchjoin_result_matches_reference(
        self, graph, views, contained_query
    ):
        engine = QueryEngine(views)
        result = engine.answer(contained_query)
        reference = match_join(
            contained_query, minimal_views(contained_query, views), views
        )
        assert result.edge_matches == reference.edge_matches
        assert result.edge_matches == match(contained_query, graph).edge_matches
        assert result.stats.strategy == "matchjoin"
        assert result.stats.elapsed >= 0.0

    def test_direct_fallback_matches_match(self, graph, views, uncovered_query):
        engine = QueryEngine(views, graph=graph)
        result = engine.answer(uncovered_query)
        assert result.edge_matches == match(uncovered_query, graph).edge_matches
        assert result.stats.strategy == "direct"

    def test_direct_without_graph_raises_not_contained(
        self, views, uncovered_query
    ):
        engine = QueryEngine(views)
        with pytest.raises(NotContainedError):
            engine.answer(uncovered_query)

    def test_materializes_missing_extensions_on_demand(
        self, graph, definitions, contained_query
    ):
        cold_views = ViewSet(definitions)  # nothing materialized
        engine = QueryEngine(cold_views, graph=graph)
        result = engine.answer(contained_query)
        assert result.edge_matches == match(contained_query, graph).edge_matches
        assert cold_views.is_materialized("V1")
        # The materialization bumped the catalog version *after* the
        # plan was keyed; the answer must still land under the current
        # key so the very next identical query is a cache hit.
        assert engine.answer(contained_query).stats.cache_hit

    def test_batch_on_demand_materialization_warms_cache(
        self, graph, definitions, contained_query
    ):
        cold_views = ViewSet(definitions)
        engine = QueryEngine(cold_views, graph=graph)
        engine.answer_batch([contained_query])
        warm = engine.answer_batch([contained_query])
        assert all(r.stats.cache_hit for r in warm)

    def test_bounded_pipeline(self, graph):
        bview = ViewDefinition(
            "BV", build_bounded({"a": "A", "c": "C"}, [("a", "c", 2)])
        )
        bviews = ViewSet([bview])
        bviews.materialize(graph)
        query = build_bounded({"x": "A", "y": "C"}, [("x", "y", 2)])
        engine = QueryEngine(bviews, graph=graph)
        result = engine.answer(query)
        assert result.edge_matches == bounded_match(query, graph).edge_matches


class TestAnswerCache:
    def test_second_answer_is_a_cache_hit_with_same_result(
        self, views, contained_query
    ):
        engine = QueryEngine(views)
        first = engine.answer(contained_query)
        second = engine.answer(contained_query)
        assert not first.stats.cache_hit
        assert second.stats.cache_hit
        assert second.edge_matches == first.edge_matches
        assert engine.cache_stats()["answers"]["hits"] == 1

    def test_catalog_mutation_invalidates(self, graph, views, contained_query):
        engine = QueryEngine(views, graph=graph)
        engine.answer(contained_query)
        views.materialize(graph)  # bumps version -> stale keys
        refreshed = engine.answer(contained_query)
        assert not refreshed.stats.cache_hit

    def test_explicit_invalidate(self, views, contained_query):
        engine = QueryEngine(views)
        engine.answer(contained_query)
        engine.invalidate()
        assert not engine.answer(contained_query).stats.cache_hit

    def test_cache_disabled_by_zero_size(self, views, contained_query):
        engine = QueryEngine(views, answer_cache_size=0)
        engine.answer(contained_query)
        assert not engine.answer(contained_query).stats.cache_hit


class TestViewSetRemove:
    def test_remove_drops_definition_and_extension(self, views):
        assert views.is_materialized("V2")
        definitions_before = views.definitions_version
        version_before = views.version
        views.remove("V2")
        assert "V2" not in views
        assert not views.is_materialized("V2")
        with pytest.raises(KeyError):
            views.definition("V2")
        with pytest.raises(KeyError):
            views.extension("V2")
        # Both counters bump: containment caches and answer caches must
        # see the eviction.
        assert views.definitions_version > definitions_before
        assert views.version > version_before
        with pytest.raises(KeyError):
            views.remove("V2")  # already gone

    def test_remove_invalidates_engine_caches(
        self, graph, views, contained_query
    ):
        engine = QueryEngine(views, graph=graph)
        first = engine.answer(contained_query)
        assert first.stats.strategy == "matchjoin"
        assert engine.plan(contained_query).containment_cached
        # Evicting a view the λ mapping uses must strand both the
        # cached containment decision and the cached answer.
        views.remove("V2")
        plan = engine.plan(contained_query)
        assert not plan.containment_cached
        assert plan.strategy == "direct"  # no longer coverable
        refreshed = engine.execute(plan)
        assert not refreshed.stats.cache_hit
        assert refreshed.edge_matches == first.edge_matches
        # A definition-only view (never materialized) is removable too.
        views.remove("V1")
        assert len(views) == 0


class TestMaintenanceIntegration:
    def test_view_maintenance_invalidates_and_refreshes(
        self, graph, definitions, contained_query
    ):
        tracker = IncrementalViewSet(definitions, graph)
        engine = QueryEngine(tracker.as_viewset(), graph=graph)
        engine.attach_maintenance(tracker)
        before = engine.answer(contained_query)
        assert before.edge_matches == match(contained_query, graph).edge_matches

        tracker.delete_edge(2, 3)
        after = engine.answer(contained_query)
        assert not after.stats.cache_hit
        shrunk = graph.copy()
        shrunk.remove_edge(2, 3)
        assert after.edge_matches == match(contained_query, shrunk).edge_matches

        # Unchanged catalog afterwards: answers cache again.
        assert engine.answer(contained_query).stats.cache_hit

    def test_maintenance_keeps_containment_decisions(
        self, graph, definitions, contained_query
    ):
        # Extension refreshes invalidate cached *answers* but not the
        # cached containment decisions (those depend on definitions
        # only) -- updates must not re-pay the Theorem 3 check.
        tracker = IncrementalViewSet(definitions, graph)
        engine = QueryEngine(tracker.as_viewset(), graph=graph)
        engine.attach_maintenance(tracker)
        engine.answer(contained_query)
        misses_before = engine.cache_stats()["containment"]["misses"]
        tracker.delete_edge(2, 3)
        tracker.insert_edge(2, 3)
        engine.answer(contained_query)
        assert engine.cache_stats()["containment"]["misses"] == misses_before

    def test_insert_edge_with_new_node(self, graph, definitions, contained_query):
        # add_edge auto-creates endpoints; the pre-mutation relevance
        # check must tolerate nodes the graph has not seen yet.
        tracker = IncrementalViewSet(definitions, graph)
        engine = QueryEngine(tracker.as_viewset(), graph=graph)
        engine.attach_maintenance(tracker)
        tracker.insert_edge(99, 1)  # 99 is brand new
        result = engine.answer(contained_query)
        grown = graph.copy()
        grown.add_edge(99, 1)
        assert result.edge_matches == match(contained_query, grown).edge_matches

    def test_detach_stops_following(self, graph, definitions, contained_query):
        tracker = IncrementalViewSet(definitions, graph)
        engine = QueryEngine(tracker.as_viewset(), graph=graph)
        engine.attach_maintenance(tracker)
        engine.answer(contained_query)
        engine.detach_maintenance()
        tracker.delete_edge(2, 3)
        assert engine.answer(contained_query).stats.cache_hit


class TestBatch:
    @pytest.fixture
    def batch(self, contained_query, uncovered_query):
        return [
            contained_query,
            uncovered_query,
            build_pattern({"x": "B", "y": "C"}, [("x", "y")]),
            contained_query,  # duplicate: evaluated once, delivered twice
        ]

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_batch_matches_sequential(self, graph, views, batch, executor):
        engine = QueryEngine(views, graph=graph, executor=executor, workers=2)
        results = engine.answer_batch(batch)
        assert len(results) == len(batch)
        for query, result in zip(batch, results):
            assert result.edge_matches == match(query, graph).edge_matches

    def test_duplicate_queries_evaluated_once(self, graph, views, batch):
        engine = QueryEngine(views, graph=graph)
        results = engine.answer_batch(batch)
        assert not results[0].stats.cache_hit
        assert results[3].stats.cache_hit

    def test_warm_batch_all_hits(self, graph, views, batch):
        engine = QueryEngine(views, graph=graph)
        engine.answer_batch(batch)
        warm = engine.answer_batch(batch)
        assert all(r.stats.cache_hit for r in warm)
        assert all(r.stats.elapsed == 0.0 for r in warm)

    def test_unknown_executor_rejected(self, views, contained_query):
        engine = QueryEngine(views)
        with pytest.raises(ValueError):
            engine.answer_batch([contained_query], executor="gpu")
        with pytest.raises(ValueError):
            QueryEngine(views, executor="gpu")


class TestLRUCache:
    def test_eviction_order_and_stats(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_zero_size_never_stores(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


class TestEngineCli:
    def test_engine_subcommand_batch_and_explain(self, tmp_path, capsys):
        from repro.cli import main

        graph = build_graph(
            {1: "A", 2: "B", 3: "C"}, [(1, 2), (2, 3)]
        )
        views = ViewSet(
            [
                ViewDefinition(
                    "V1", build_pattern({"a": "A", "b": "B"}, [("a", "b")])
                ),
                ViewDefinition(
                    "V2", build_pattern({"b": "B", "c": "C"}, [("b", "c")])
                ),
            ]
        )
        views.materialize(graph)
        graph_path = tmp_path / "g.json"
        views_path = tmp_path / "v.json"
        q1_path = tmp_path / "q1.json"
        q2_path = tmp_path / "q2.json"
        write_graph(graph, graph_path)
        write_viewset(views, views_path)
        write_pattern(
            build_pattern({"x": "A", "y": "B"}, [("x", "y")]), q1_path
        )
        write_pattern(
            build_pattern({"x": "B", "y": "C"}, [("x", "y")]), q2_path
        )

        rc = main([
            "engine", "--queries", str(q1_path), str(q2_path),
            "--views", str(views_path), "--graph", str(graph_path),
            "--repeat", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[cold]" in out and "[warm #1]" in out
        assert "via cache" in out
        assert "answers cache" in out

        rc = main([
            "engine", "--queries", str(q1_path),
            "--views", str(views_path), "--explain",
        ])
        assert rc == 0
        assert "strategy : matchjoin" in capsys.readouterr().out

    def test_engine_subcommand_not_contained_without_graph(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        views = ViewSet(
            [ViewDefinition("V1", build_pattern({"a": "A", "b": "B"}, [("a", "b")]))]
        )
        views_path = tmp_path / "v.json"
        q_path = tmp_path / "q.json"
        write_viewset(views, views_path)
        write_pattern(build_pattern({"x": "C", "y": "C"}, [("x", "y")]), q_path)
        rc = main([
            "engine", "--queries", str(q_path), "--views", str(views_path),
        ])
        assert rc == 1
        assert "not contained" in capsys.readouterr().err
