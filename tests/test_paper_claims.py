"""Integration tests pinning the paper's qualitative claims at small scale.

These run the real dataset generators + view suites + query workloads
(scaled down for test speed) and assert the *claims* the evaluation
makes, so a regression in any layer shows up as a broken claim rather
than a silent benchmark drift.
"""

import time

import pytest

from repro.bench.reporting import timed
from repro.core.bounded.bcontainment import bounded_contains
from repro.core.bounded.bminimal import bounded_minimal_views
from repro.core.bounded.bmatchjoin import bounded_match_join
from repro.core.containment import contains
from repro.core.matchjoin import match_join
from repro.core.minimal import minimal_views
from repro.core.minimum import minimum_views
from repro.datasets import (
    amazon_graph,
    amazon_views,
    citation_graph,
    citation_views,
    query_from_views,
    youtube_graph,
    youtube_views,
)
from repro.bench.workloads import bounded_suite
from repro.simulation import bounded_match, match


@pytest.fixture(scope="module")
def amazon():
    graph = amazon_graph(8000, 24000, seed=5)
    views = amazon_views()
    views.materialize(graph)
    return graph, views


@pytest.fixture(scope="module")
def citation():
    graph = citation_graph(8000, 20000, seed=5)
    views = citation_views()
    views.materialize(graph)
    return graph, views


@pytest.fixture(scope="module")
def youtube():
    graph = youtube_graph(8000, 23000, seed=5)
    views = youtube_views()
    views.materialize(graph)
    return graph, views


class TestTheorem1OnDatasets:
    """MatchJoin == Match on every dataset for stitched workloads."""

    @pytest.mark.parametrize("seed", range(4))
    def test_amazon(self, amazon, seed):
        graph, views = amazon
        query = query_from_views(views, 5, 8, seed=seed)
        containment = contains(query, views)
        assert containment.holds
        assert (
            match_join(query, containment, views).edge_matches
            == match(query, graph).edge_matches
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_citation(self, citation, seed):
        graph, views = citation
        query = query_from_views(views, 5, 8, seed=seed, require_dag=True)
        containment = contains(query, views)
        assert containment.holds
        assert (
            match_join(query, containment, views).edge_matches
            == match(query, graph).edge_matches
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_youtube(self, youtube, seed):
        graph, views = youtube
        query = query_from_views(views, 5, 8, seed=seed)
        containment = contains(query, views)
        assert containment.holds
        assert (
            match_join(query, containment, views).edge_matches
            == match(query, graph).edge_matches
        )


class TestTheorem8OnDatasets:
    def test_bounded_amazon(self, amazon):
        graph, plain_views = amazon
        views = bounded_suite(plain_views, 2, tag="claims-amazon")
        views.materialize(graph)
        query = query_from_views(views, 4, 6, seed=1)
        containment = bounded_contains(query, views)
        assert containment.holds
        minimal = bounded_minimal_views(query, views)
        assert (
            bounded_match_join(query, minimal, views).edge_matches
            == bounded_match(query, graph).edge_matches
        )


class TestPerformanceClaims:
    """Directional performance claims -- generous margins so CI noise
    cannot flake them, but a complexity regression still trips them."""

    def test_matchjoin_beats_match_on_youtube(self, youtube):
        graph, views = youtube
        query = query_from_views(views, 5, 8, seed=0)
        containment = minimal_views(query, views)
        t_match = timed(match, query, graph, repeat=2)
        t_join = timed(match_join, query, containment, views, repeat=2)
        assert t_join < t_match

    def test_containment_analysis_under_budget(self, youtube):
        """Paper: containment checking takes < 0.5s on complex patterns."""
        graph, views = youtube
        query = query_from_views(views, 8, 12, seed=2)
        start = time.perf_counter()
        minimal_views(query, views)
        minimum_views(query, views)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5

    def test_extension_fraction_below_one(self, amazon, citation, youtube):
        """V(G) is (much) smaller than G on every dataset."""
        for graph, views in (amazon, citation, youtube):
            assert views.extension_fraction(graph) < 0.8

    def test_minimum_never_larger_than_minimal_on_suites(self, youtube):
        graph, views = youtube
        for seed in range(4):
            query = query_from_views(views, 5, 8, seed=seed)
            n_min = len(minimum_views(query, views).views_used())
            n_mnl = len(minimal_views(query, views).views_used())
            assert n_min <= n_mnl

    def test_views_used_in_paper_band(self, youtube):
        """Paper: 3-6 views answer a YouTube query."""
        graph, views = youtube
        for seed in range(4):
            query = query_from_views(views, 5, 8, seed=seed)
            used = len(minimum_views(query, views).views_used())
            assert 1 <= used <= 6
