"""Persistent snapshot directories and streaming out-of-core ingest.

Round trips through :mod:`repro.graph.snapshot` and
:mod:`repro.graph.ingest`: save -> load -> query equivalence against
the in-memory backends (dict graph == compact == reloaded mmap),
manifest/segment corruption rejection, patch-overlay and provenance
preservation, sharded round trips, the shard-at-a-time ingest builder,
``QueryEngine(snapshot_path=...)`` boots, epoch persistence in the
serving layer, and the CLI surface over all of it.
"""

import asyncio
import json
import random

import pytest

from helpers import random_labeled_graph
from repro.cli import main as cli_main
from repro.datasets import generate_views, query_from_views, random_graph
from repro.engine import QueryEngine
from repro.graph import DataGraph
from repro.graph.flatbuf import SegmentFormatError, SharedCompactGraph
from repro.graph.ingest import ingest_snapshot
from repro.graph.snapshot import (
    MANIFEST_NAME,
    SnapshotError,
    SnapshotStore,
)
from repro.shard import ShardedGraph, StreamingHashPartitioner, make_partition
from repro.shard.psim import sharded_match
from repro.simulation import match
from repro.views.storage import ViewSet

LABELS = tuple(f"l{i}" for i in range(4))


def _workload(seed=17, nodes=80, edges=200):
    graph = random_graph(nodes, edges, labels=LABELS, seed=seed)
    views = ViewSet(generate_views(LABELS, 5, seed=seed))
    query = query_from_views(views, 4, 6, seed=seed)
    return graph, views, query


def _random_edges(count, num_nodes, seed=23):
    rng = random.Random(seed)
    return [
        (f"n{rng.randrange(num_nodes)}", f"n{rng.randrange(num_nodes)}")
        for _ in range(count)
    ]


def _labeler(node):
    return (f"l{int(node[1:]) % len(LABELS)}",)


# ----------------------------------------------------------------------
# Compact round trips
# ----------------------------------------------------------------------
class TestCompactRoundTrip:
    def test_dict_compact_reloaded_all_equal(self, tmp_path):
        graph, _, query = _workload()
        dict_result = match(query, graph)
        compact_result = match(query, graph.freeze())
        SnapshotStore.save(tmp_path / "snap", graph)
        loaded = SnapshotStore.load(tmp_path / "snap", verify=True)
        assert isinstance(loaded.graph, SharedCompactGraph)
        assert loaded.graph.flat_store.backend == "file"
        reloaded_result = match(query, loaded.graph)
        assert dict_result.edge_matches == compact_result.edge_matches
        assert dict_result.edge_matches == reloaded_result.edge_matches

    def test_graph_contents_survive(self, tmp_path):
        g = random_labeled_graph(random.Random(5), 50, 140)
        SnapshotStore.save(tmp_path / "snap", g)
        loaded = SnapshotStore.load(tmp_path / "snap")
        revived = loaded.graph
        assert set(revived.nodes()) == set(g.nodes())
        assert set(revived.edges()) == set(g.edges())
        for v in g.nodes():
            assert revived.labels(v) == g.labels(v)
            assert revived.attrs(v) == g.attrs(v)

    def test_patch_overlay_and_provenance_preserved(self, tmp_path):
        g = random_labeled_graph(random.Random(6), 40, 100)
        first = g.freeze(shared=True)
        nodes = sorted(g.nodes(), key=repr)
        added = []
        for v in nodes[:3]:
            w = nodes[-1] if v != nodes[-1] else nodes[0]
            if not g.has_edge(v, w):
                g.add_edge(v, w)
                added.append((v, w))
        assert added
        refreshed = g.freeze()
        assert refreshed.extends_token == first.snapshot_token
        SnapshotStore.save(tmp_path / "snap", refreshed)
        loaded = SnapshotStore.load(tmp_path / "snap")
        assert loaded.graph.extends_token == first.snapshot_token
        assert loaded.graph.snapshot_token == refreshed.snapshot_token
        for v, w in added:
            assert loaded.graph.has_edge(v, w)

    def test_overwrite_guard_and_swap(self, tmp_path):
        g1 = random_labeled_graph(random.Random(7), 20, 40)
        g2 = random_labeled_graph(random.Random(8), 30, 60)
        SnapshotStore.save(tmp_path / "snap", g1)
        with pytest.raises(SnapshotError, match="overwrite"):
            SnapshotStore.save(tmp_path / "snap", g2)
        SnapshotStore.save(tmp_path / "snap", g2, overwrite=True)
        loaded = SnapshotStore.load(tmp_path / "snap")
        assert set(loaded.graph.edges()) == set(g2.edges())


# ----------------------------------------------------------------------
# Rejection of damaged directories
# ----------------------------------------------------------------------
class TestRejection:
    @pytest.fixture
    def saved(self, tmp_path):
        g = random_labeled_graph(random.Random(9), 30, 80)
        SnapshotStore.save(tmp_path / "snap", g)
        return tmp_path / "snap"

    def test_missing_directory(self, tmp_path):
        with pytest.raises(SnapshotError):
            SnapshotStore.load(tmp_path / "nope")

    def test_garbled_manifest(self, saved):
        (saved / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotError):
            SnapshotStore.load(saved)

    def test_wrong_format_version(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["format"] = 99
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="format"):
            SnapshotStore.load(saved)

    def test_corrupt_segment_header(self, saved):
        seg = saved / "graph.seg"
        data = bytearray(seg.read_bytes())
        data[0] ^= 0xFF
        seg.write_bytes(bytes(data))
        with pytest.raises(SegmentFormatError, match="magic"):
            SnapshotStore.load(saved)

    def test_corrupt_payload_caught_by_verify(self, saved):
        seg = saved / "graph.seg"
        data = bytearray(seg.read_bytes())
        data[48] ^= 0xFF
        seg.write_bytes(bytes(data))
        with pytest.raises(SegmentFormatError):
            SnapshotStore.load(saved, verify=True)


# ----------------------------------------------------------------------
# Views ride along
# ----------------------------------------------------------------------
class TestViewsRoundTrip:
    def test_viewset_survives_and_answers(self, tmp_path):
        graph, views, query = _workload(seed=19)
        live = QueryEngine(views, graph=graph)
        expected = live.answer(query)
        checkpoint = live.checkpoint()
        SnapshotStore.save(
            tmp_path / "snap", checkpoint.snapshot,
            views=checkpoint.extensions,
        )
        loaded = SnapshotStore.load(tmp_path / "snap")
        assert loaded.views
        rebooted = QueryEngine(snapshot_path=loaded)
        got = rebooted.answer(query)
        assert got.edge_matches == expected.edge_matches


# ----------------------------------------------------------------------
# Sharded round trips
# ----------------------------------------------------------------------
class TestShardedRoundTrip:
    def test_sharded_save_load_equivalence(self, tmp_path):
        graph, views, query = _workload(seed=29)
        sharded = ShardedGraph(graph, make_partition(graph, 3, "hash"))
        before = sharded_match(query, sharded)
        SnapshotStore.save(tmp_path / "snap", sharded)
        loaded = SnapshotStore.load(tmp_path / "snap", verify=True)
        revived = loaded.graph
        assert revived.num_shards == 3
        assert revived.num_nodes == sharded.num_nodes
        assert revived.num_edges == sharded.num_edges
        assert sharded_match(query, revived) == before
        assert (
            sharded_match(query, revived).edge_matches
            == match(query, graph).edge_matches
        )


# ----------------------------------------------------------------------
# Streaming ingest
# ----------------------------------------------------------------------
class TestIngest:
    def test_matches_in_memory_build(self, tmp_path):
        # Duplicates on purpose: the builder must dedup exactly like
        # DataGraph does, and the manifest counts must agree.
        edges = _random_edges(400, 60) + _random_edges(50, 60)
        report = ingest_snapshot(
            iter(edges), tmp_path / "snap",
            num_shards=3, labeler=_labeler, budget_bytes=1 << 12,
        )
        reference = DataGraph()
        for s, t in edges:
            for node in (s, t):
                if node not in reference:
                    reference.add_node(node, labels=_labeler(node))
            reference.add_edge(s, t)
        sharded = ShardedGraph(
            reference, make_partition(reference, 3, "hash")
        )
        loaded = SnapshotStore.load(tmp_path / "snap", verify=True)
        revived = loaded.graph
        assert report.edges == reference.num_edges == revived.num_edges
        assert report.nodes == reference.num_nodes == revived.num_nodes
        assert revived.num_shards == sharded.num_shards
        assert set(revived.partition.cross_edges) == set(
            sharded.partition.cross_edges
        )
        views = ViewSet(generate_views(LABELS, 5, seed=29))
        query = query_from_views(views, 4, 6, seed=29)
        assert (
            sharded_match(query, revived).edge_matches
            == match(query, reference).edge_matches
        )

    def test_streaming_partitioner_spills_under_budget(self, tmp_path):
        edges = _random_edges(300, 40, seed=31)
        with StreamingHashPartitioner(
            3, tmp_path, budget_bytes=256
        ) as part:
            part.add_edges(iter(edges))
            part.flush()
            assert part.spill_bytes > 0
            assert part.edges == len(edges)
            seen = sum(
                1
                for shard in range(3)
                for record in part.shard_records(shard)
                if record[0] == "e"
            )
            assert seen == len(edges)
        assert not list(tmp_path.glob("*.spill"))

    def test_max_edges_guard(self, tmp_path):
        edges = _random_edges(30, 10)
        with pytest.raises(ValueError, match="max_edges"):
            ingest_snapshot(
                iter(edges), tmp_path / "snap", num_shards=2, max_edges=10
            )
        assert not (tmp_path / "snap").exists()

    def test_overwrite(self, tmp_path):
        ingest_snapshot(
            iter(_random_edges(40, 10)), tmp_path / "snap", num_shards=2
        )
        with pytest.raises(SnapshotError, match="overwrite"):
            ingest_snapshot(
                iter(_random_edges(40, 10)), tmp_path / "snap", num_shards=2
            )
        report = ingest_snapshot(
            iter(_random_edges(60, 12, seed=37)),
            tmp_path / "snap",
            num_shards=2,
            overwrite=True,
        )
        loaded = SnapshotStore.load(tmp_path / "snap")
        assert loaded.graph.num_edges == report.edges


# ----------------------------------------------------------------------
# Engine boot from a snapshot directory
# ----------------------------------------------------------------------
class TestEngineBoot:
    def test_compact_boot_equivalence(self, tmp_path):
        graph, views, query = _workload(seed=41)
        live = QueryEngine(views, graph=graph)
        expected = live.answer(query)
        checkpoint = live.checkpoint()
        SnapshotStore.save(
            tmp_path / "snap", checkpoint.snapshot,
            views=checkpoint.extensions,
        )
        booted = QueryEngine(snapshot_path=tmp_path / "snap")
        assert booted.snapshot_path == str(tmp_path / "snap")
        assert booted.answer(query).edge_matches == expected.edge_matches

    def test_sharded_boot_adopts_shards(self, tmp_path):
        graph, views, query = _workload(seed=43)
        sharded = ShardedGraph(graph, make_partition(graph, 3, "hash"))
        SnapshotStore.save(tmp_path / "snap", sharded)
        views.materialize(graph)
        booted = QueryEngine(views, snapshot_path=tmp_path / "snap")
        assert booted.snapshot().num_shards == 3
        expected = QueryEngine(views, graph=graph).answer(query)
        assert booted.answer(query).edge_matches == expected.edge_matches

    def test_conflicts_rejected(self, tmp_path):
        graph, views, _ = _workload(seed=47)
        SnapshotStore.save(tmp_path / "snap", graph)
        with pytest.raises(ValueError, match="snapshot_path"):
            QueryEngine(views, graph=graph, snapshot_path=tmp_path / "snap")
        with pytest.raises(ValueError, match="compact"):
            QueryEngine(views, snapshot_path=tmp_path / "snap", shards=4)
        with pytest.raises(ValueError, match="view catalog"):
            QueryEngine()


# ----------------------------------------------------------------------
# Serving layer: epoch persistence and restart
# ----------------------------------------------------------------------
class TestServePersistence:
    def test_epochs_persist_and_reboot(self, tmp_path):
        from repro.serve import QueryServer
        from repro.views.maintenance import Delta, IncrementalViewSet

        graph, views, query = _workload(seed=53)
        tracker = IncrementalViewSet(views.definitions(), graph)
        engine = QueryEngine(views, graph=graph)
        engine.attach_maintenance(tracker)
        persist = tmp_path / "persist"
        server = QueryServer(engine, persist_path=persist)

        async def run():
            async with server:
                first = await server.query(query)
                nodes = sorted(tracker.graph.nodes(), key=repr)
                await server.update(
                    Delta().insert(nodes[0], nodes[-1])
                )
                second = await server.query(query)
                return first, second, dict(server.stats()["requests"])

        first, second, counters = asyncio.run(run())
        assert counters["snapshots_persisted"] == 2
        assert counters["persist_failures"] == 0
        assert first.epoch != second.epoch
        rebooted = QueryEngine(snapshot_path=persist)
        assert (
            rebooted.answer(query).edge_matches == second.result.edge_matches
        )

    def test_snapshot_booted_server_serves(self, tmp_path):
        from repro.serve import QueryServer

        graph, views, query = _workload(seed=59)
        live = QueryEngine(views, graph=graph)
        expected = live.answer(query)
        checkpoint = live.checkpoint()
        SnapshotStore.save(
            tmp_path / "snap", checkpoint.snapshot,
            views=checkpoint.extensions,
        )
        booted = QueryEngine(snapshot_path=tmp_path / "snap")
        server = QueryServer(booted)

        async def run():
            async with server:
                return await server.query(query)

        answer = asyncio.run(run())
        assert answer.result.edge_matches == expected.edge_matches


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_ingest_info_load_stats(self, tmp_path, capsys):
        edge_file = tmp_path / "edges.txt"
        edge_file.write_text(
            "# comment\n"
            + "".join(f"{s[1:]}\t{t[1:]}\n" for s, t in _random_edges(200, 40))
        )
        out = tmp_path / "snap"
        assert cli_main([
            "ingest", "--edges", str(edge_file), "--out", str(out),
            "--shards", "2", "--labels", "4", "--format", "json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["edges"] > 0
        assert report["on_disk_bytes"] > 0

        assert cli_main([
            "snapshot", "info", str(out), "--verify", "--format", "json",
        ]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["manifest"]["kind"] == "sharded"
        assert info["verified_segments"]

        assert cli_main(["snapshot", "load", str(out), "--verify"]) == 0
        assert "loaded sharded snapshot" in capsys.readouterr().out

        assert cli_main([
            "stats", "--snapshot", str(out), "--format", "json",
        ]) == 0
        stats = json.loads(capsys.readouterr().out)
        segments = stats["memory"]["segments"]
        assert segments
        assert all(row["backend"] == "file" for row in segments.values())
        assert stats["memory"]["on_disk_bytes"] > 0

    def test_snapshot_save_cli(self, tmp_path, capsys):
        from repro.graph.io import write_graph

        graph, _, _ = _workload(seed=61)
        write_graph(graph, tmp_path / "g.json")
        assert cli_main([
            "snapshot", "save", "--graph", str(tmp_path / "g.json"),
            "--out", str(tmp_path / "snap"), "--shards", "2",
        ]) == 0
        assert "saved sharded snapshot" in capsys.readouterr().out
        loaded = SnapshotStore.load(tmp_path / "snap")
        assert loaded.graph.num_shards == 2
        assert loaded.graph.num_edges == graph.num_edges
