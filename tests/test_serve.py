"""The serving layer: epochs, coalescing, admission, shutdown, TCP.

Interleavings are driven deterministically, not by timing: tests wrap
``QueryServer._evaluate`` (the documented hook) with a gate so a reader
can be held *inside* evaluation while updates swap epochs around it.
"""

import asyncio
import json
import threading

import pytest

from helpers import build_graph, build_pattern
from repro.engine import QueryEngine
from repro.errors import ServerClosedError, ServerOverloadedError
from repro.graph.io import pattern_to_json
from repro.serve import Epoch, QueryServer, SnapshotRegistry, serve_tcp
from repro.simulation import match
from repro.views import Delta, ViewDefinition, ViewSet
from repro.views.maintenance import IncrementalViewSet


def _graph():
    return build_graph(
        {1: "A", 2: "B", 3: "C", 4: "A", 5: "B", 6: "C"},
        [(1, 2), (2, 3), (4, 5), (5, 6), (2, 6)],
    )


def _definitions():
    return [
        ViewDefinition("AB", build_pattern({"a": "A", "b": "B"}, [("a", "b")])),
        ViewDefinition("BC", build_pattern({"b": "B", "c": "C"}, [("b", "c")])),
    ]


AB = build_pattern({"x": "A", "y": "B"}, [("x", "y")])
BC = build_pattern({"x": "B", "y": "C"}, [("x", "y")])


def make_server(**kwargs):
    """A served engine over the tiny graph, maintenance attached.
    Returns (server, tracker) -- ``tracker.graph`` is the live graph
    (the engine adopts the tracker's copy on attach)."""
    graph = _graph()
    definitions = _definitions()
    tracker = IncrementalViewSet(definitions, graph)
    engine = QueryEngine(ViewSet(definitions), graph=graph)
    engine.attach_maintenance(tracker)
    return QueryServer(engine, **kwargs), tracker


class Gate:
    """Holds every ``_evaluate`` call until released (30s failsafe)."""

    def __init__(self, server):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self._original = server._evaluate
        server._evaluate = self._gated

    def _gated(self, spec, epoch):
        self.calls += 1
        self.entered.set()
        if not self.release.wait(timeout=30):
            raise RuntimeError("Gate never released")
        return self._original(spec, epoch)

    async def wait_entered(self):
        await asyncio.get_running_loop().run_in_executor(
            None, self.entered.wait, 30
        )


async def spin_until(predicate, timeout=10.0):
    """Cede the loop until ``predicate()`` holds (tests only)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never held")
        await asyncio.sleep(0.005)


class TestEpoch:
    def test_pin_release_refcount(self):
        epoch = Epoch(0, object())
        epoch.acquire()
        epoch.acquire()
        assert epoch.readers == 2
        epoch.release()
        assert epoch.readers == 1
        assert not epoch.drained
        epoch.retire()
        assert epoch.retired and not epoch.drained
        epoch.release()
        assert epoch.drained
        assert epoch.wait_drained(0.1)

    def test_over_release_is_an_error(self):
        epoch = Epoch(0, object())
        with pytest.raises(RuntimeError):
            epoch.release()

    def test_retire_with_no_readers_drains_immediately(self):
        epoch = Epoch(3, object())
        epoch.retire()
        assert epoch.drained

    def test_registry_swap_retires_previous(self):
        registry = SnapshotRegistry()
        with pytest.raises(RuntimeError):
            registry.pin()
        assert registry.current_id == -1
        first = registry.swap("ck0")
        assert (first.epoch_id, registry.current_id) == (0, 0)
        pinned = registry.pin()
        assert pinned is first
        second = registry.swap("ck1")
        assert second.epoch_id == 1
        assert first.retired and not first.drained  # reader still on it
        pinned.release()
        assert first.drained
        stats = registry.drain_stats()
        assert stats == {"swaps": 1, "draining": 0, "drained": 1}


class TestServerLifecycle:
    def test_requires_a_graph(self):
        engine = QueryEngine(ViewSet(_definitions()))
        with pytest.raises(ValueError):
            QueryServer(engine)

    def test_validates_admission_parameters(self):
        graph = _graph()
        engine = QueryEngine(ViewSet(_definitions()), graph=graph)
        with pytest.raises(ValueError):
            QueryServer(engine, max_inflight=0)
        with pytest.raises(ValueError):
            QueryServer(engine, max_queue=-1)

    def test_query_before_start_and_after_stop(self):
        async def run():
            server, _ = make_server()
            with pytest.raises(ServerClosedError):
                await server.query(AB)
            async with server:
                answer = await server.query(AB)
                assert answer.epoch == 0
            with pytest.raises(ServerClosedError) as err:
                await server.query(AB)
            assert err.value.retriable is False

        asyncio.run(run())

    def test_clean_shutdown_drains_inflight_requests(self):
        async def run():
            server, _ = make_server()
            await server.start()
            gate = Gate(server)
            inflight = asyncio.ensure_future(server.query(AB))
            await gate.wait_entered()
            stopper = asyncio.ensure_future(server.stop())
            # stop() refuses new work immediately...
            await spin_until(lambda: server.closing)
            with pytest.raises(ServerClosedError):
                await server.query(BC)
            # ...but waits for the pinned reader, which completes fine.
            assert not stopper.done()
            gate.release.set()
            answer = await inflight
            await stopper
            assert answer.epoch == 0 and answer.result.result_size > 0
            await server.stop()  # idempotent

        asyncio.run(run())


class TestEpochSwap:
    def test_reader_pinned_before_update_sees_old_epoch(self):
        async def run():
            server, tracker = make_server()
            before = tracker.graph.copy()
            async with server:
                gate = Gate(server)
                early = asyncio.ensure_future(server.query(AB))
                await gate.wait_entered()  # pinned + evaluating on epoch 0

                # Maintenance swaps to epoch 1 while the reader is held.
                outcome = await server.update(Delta().insert(4, 2).delete(1, 2))
                assert outcome.epoch == 1
                assert server.current_epoch == 1
                stats = server.stats()["epoch"]
                assert stats["draining"] == 1  # epoch 0: retired, pinned

                gate.release.set()
                answer = await early
                # Served from the epoch it pinned, with *that* epoch's data.
                assert answer.epoch == 0
                assert (
                    answer.result.edge_matches
                    == match(AB, before).edge_matches
                )

                late = await server.query(AB)
                assert late.epoch == 1
                assert (
                    late.result.edge_matches
                    == match(AB, tracker.graph).edge_matches
                )
                drain = server.stats()["epoch"]
                assert drain["draining"] == 0 and drain["drained"] == 1

        asyncio.run(run())

    def test_updates_never_block_readers(self):
        async def run():
            server, tracker = make_server()
            async with server:
                for round_index in range(4):
                    source = 10 + round_index
                    update = asyncio.ensure_future(
                        server.update(Delta().insert(source, 2))
                    )
                    # Readers admitted while maintenance runs still finish.
                    answers = await asyncio.gather(
                        *(server.query(AB) for _ in range(3))
                    )
                    outcome = await update
                    for answer in answers:
                        assert answer.epoch in (outcome.epoch - 1, outcome.epoch)
                assert server.current_epoch == 4
                final = await server.query(AB)
                assert (
                    final.result.edge_matches
                    == match(AB, tracker.graph).edge_matches
                )

        asyncio.run(run())


class TestCoalescing:
    def test_identical_inflight_queries_coalesce_to_one_evaluation(self):
        async def run():
            server, _ = make_server()
            async with server:
                gate = Gate(server)
                queries = [
                    asyncio.ensure_future(server.query(AB)) for _ in range(5)
                ]
                await gate.wait_entered()
                # 4 followers parked on the owner's future.
                await spin_until(
                    lambda: server.stats()["requests"]["coalesced"] == 4
                )
                gate.release.set()
                answers = await asyncio.gather(*queries)

                assert gate.calls == 1
                requests = server.stats()["requests"]
                assert requests["evaluated"] == 1
                assert requests["coalesced"] == 4
                owners = [a for a in answers if not a.coalesced]
                assert len(owners) == 1
                reference = owners[0].result.edge_matches
                for answer in answers:
                    assert answer.result.edge_matches == reference
                    assert answer.epoch == 0

                # A later identical query at the same versions: LRU hit.
                again = await server.query(AB)
                assert again.cache_hit
                assert server.stats()["requests"]["cache_hits"] == 1

        asyncio.run(run())

    def test_distinct_queries_do_not_coalesce(self):
        async def run():
            server, _ = make_server()
            async with server:
                gate = Gate(server)
                a = asyncio.ensure_future(server.query(AB))
                b = asyncio.ensure_future(server.query(BC))
                await spin_until(lambda: gate.calls == 2)
                gate.release.set()
                await asyncio.gather(a, b)
                requests = server.stats()["requests"]
                assert requests["evaluated"] == 2
                assert requests["coalesced"] == 0

        asyncio.run(run())

    def test_coalesced_queries_on_different_epochs_evaluate_separately(self):
        async def run():
            server, _ = make_server()
            async with server:
                first = await server.query(AB)
                # Swap epochs; same pattern must not reuse epoch-0 entry
                # (the delta touches AB's view, so the stamp moved).
                await server.update(Delta().insert(4, 2))
                second = await server.query(AB)
                assert (first.epoch, second.epoch) == (0, 1)
                assert not second.cache_hit
                assert second.result.result_size > first.result.result_size

        asyncio.run(run())


class TestBackpressure:
    def test_overload_sheds_with_retriable_error(self):
        async def run():
            server, _ = make_server(max_inflight=1, max_queue=1)
            async with server:
                gate = Gate(server)
                running = asyncio.ensure_future(server.query(AB))
                await gate.wait_entered()
                queued = asyncio.ensure_future(server.query(BC))
                await spin_until(
                    lambda: server.stats()["requests"]["inflight"] == 2
                )
                # Admission is full: 1 evaluating + 1 queued.
                with pytest.raises(ServerOverloadedError) as err:
                    await server.query(AB)
                assert err.value.retriable is True
                assert server.stats()["requests"]["shed"] == 1

                # Shedding never wedges the server: held work completes.
                gate.release.set()
                answers = await asyncio.wait_for(
                    asyncio.gather(running, queued), timeout=30
                )
                assert all(a.result is not None for a in answers)
                requests = server.stats()["requests"]
                assert requests["completed"] == 2
                assert requests["inflight"] == 0
                after = await server.query(AB)  # admission reopened
                assert after.cache_hit

        asyncio.run(run())


class TestStats:
    def test_stats_shape(self):
        async def run():
            server, _ = make_server()
            async with server:
                await server.query(AB)
                await server.update(Delta().insert(7, 1).delete(7, 1).delete(9, 9))
                stats = server.stats()
                assert stats["epoch"]["current"] == 1
                assert stats["epoch"]["swaps"] == 1  # one transition
                assert stats["requests"]["admitted"] == 1
                assert stats["requests"]["deltas"] == 1
                assert stats["requests"]["ops_applied"] == 2
                assert stats["requests"]["ops_skipped"] == 1
                assert {"AB", "BC"} <= set(stats["views"])
                assert "served_answers" in stats["caches"]
                assert "answers" in stats["caches"]

        asyncio.run(run())


class TestTcpProtocol:
    def test_round_trip(self):
        async def run():
            server, _ = make_server()
            async with server:
                tcp = await serve_tcp(server, port=0)
                port = tcp.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )

                async def call(payload):
                    writer.write(json.dumps(payload).encode() + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())

                pong = await call({"op": "ping"})
                assert pong == {"ok": True, "epoch": 0, "pong": True}

                answer = await call(
                    {"op": "query", "pattern": pattern_to_json(AB)}
                )
                assert answer["ok"] and answer["epoch"] == 0
                assert answer["result"]["pairs"] > 0

                updated = await call(
                    {"op": "update", "ops": [["+", 4, 2], ["-", 1, 2]]}
                )
                assert updated["ok"] and updated["epoch"] == 1
                assert updated["applied"] == 2

                stats = await call({"op": "stats"})
                assert stats["ok"] and stats["stats"]["epoch"]["current"] == 1

                bad = await call({"op": "frobnicate"})
                assert bad["ok"] is False and bad["retriable"] is False
                bad_pattern = await call({"op": "query"})
                assert bad_pattern["ok"] is False

                writer.close()
                tcp.close()
                await tcp.wait_closed()

        asyncio.run(run())
