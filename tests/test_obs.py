"""Tests for the observability layer (``repro.obs``) and its hooks.

Covers the metrics registry primitives (bucket boundaries, labels,
snapshot/Prometheus rendering, no-op mode), trace span nesting and
propagation across thread and process executors (worker spans reattach
to the right parent), the engine's plan-choice telemetry against
``QueryPlan.explain()``, and metrics surviving a serving epoch swap.
"""

import asyncio
import dataclasses
import logging
import threading

import pytest

from repro import QueryEngine
from repro.engine.plan import PLAN_RECORD_VERSION
from repro.errors import ServerOverloadedError
from repro.obs import trace
from repro.obs.logsetup import StructuredFormatter, install, log_fields
from repro.obs.metrics import (
    DURATION_BUCKETS,
    MetricsRegistry,
    get_registry,
    log_buckets,
    set_registry,
)
from repro.obs.trace import TraceCollector, format_span_tree
from repro.serve import QueryServer
from repro.shard import ShardedGraph, make_partition
from repro.shard.psim import partial_max_simulation
from repro.views import Delta, ViewDefinition, ViewSet
from repro.views.maintenance import IncrementalViewSet

from helpers import build_graph, build_pattern


def _graph():
    return build_graph(
        {1: "A", 2: "B", 3: "C", 4: "B", 5: "A", 6: "C"},
        [(1, 2), (2, 3), (1, 4), (4, 3), (5, 4), (4, 6), (3, 6)],
    )


def _definitions():
    return [
        ViewDefinition(
            "V1", build_pattern({"a": "A", "b": "B"}, [("a", "b")])
        ),
        ViewDefinition(
            "V2", build_pattern({"b": "B", "c": "C"}, [("b", "c")])
        ),
    ]


#: Covered by V1 + V2 (matchjoin), V1 only, V2 only -- distinct
#: fingerprints so serving tests can avoid unintended coalescing.
ABC = build_pattern({"x": "A", "y": "B", "z": "C"}, [("x", "y"), ("y", "z")])
AB = build_pattern({"x": "A", "y": "B"}, [("x", "y")])
BC = build_pattern({"x": "B", "y": "C"}, [("x", "y")])


@pytest.fixture
def graph():
    return _graph()


@pytest.fixture
def views(graph):
    vs = ViewSet(_definitions())
    vs.materialize(graph)
    return vs


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestHistogramBuckets:
    def test_log_buckets_geometric(self):
        buckets = log_buckets(1e-6, 4.0, 5)
        assert list(buckets) == pytest.approx(
            [1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4]
        )

    def test_log_buckets_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 4.0, 5)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0, 5)
        with pytest.raises(ValueError):
            log_buckets(1.0, 4.0, 0)

    def test_boundaries_are_inclusive_upper_bounds(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", boundaries=[1.0, 10.0, 100.0])
        for value in (0.5, 1.0):  # both land in the first bucket
            hist.observe(value)
        hist.observe(10.0)    # second bucket, inclusive
        hist.observe(10.1)    # third bucket
        hist.observe(1000.0)  # +Inf overflow slot
        assert hist.bucket_counts() == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(0.5 + 1.0 + 10.0 + 10.1 + 1000.0)

    def test_duration_buckets_span_microseconds_to_minutes(self):
        assert DURATION_BUCKETS[0] == pytest.approx(1e-6)
        assert DURATION_BUCKETS[-1] > 60

    def test_prometheus_rendering_is_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_seconds", boundaries=[1.0, 2.0])
        for value in (0.5, 1.5, 5.0):
            hist.observe(value)
        text = reg.render_prometheus()
        assert "# TYPE h_seconds histogram" in text
        assert 'h_seconds_bucket{le="1.0"} 1' in text
        assert 'h_seconds_bucket{le="2.0"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 3' in text
        assert "h_seconds_count 3" in text

    def test_one_type_comment_per_family(self):
        reg = MetricsRegistry()
        reg.counter("c_total", path="a").inc()
        reg.counter("c_total", path="b").inc()
        text = reg.render_prometheus()
        assert text.count("# TYPE c_total counter") == 1
        assert 'c_total{path="a"} 1' in text
        assert 'c_total{path="b"} 1' in text


class TestRegistry:
    def test_labels_key_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("c_total", path="a")
        b = reg.counter("c_total", path="b")
        assert a is not b
        assert a is reg.counter("c_total", path="a")
        a.inc(3)
        snapshot = reg.snapshot()
        assert snapshot["counters"]["c_total"]['{path="a"}'] == 3
        assert snapshot["counters"]["c_total"]['{path="b"}'] == 0

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c_total").inc(-1)

    def test_snapshot_is_versioned(self):
        snapshot = MetricsRegistry().snapshot()
        assert snapshot["version"] == 1
        assert snapshot["enabled"] is True

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c_total").inc()
        reg.gauge("g").set(5)
        reg.histogram("h", boundaries=[1.0]).observe(2.0)
        snapshot = reg.snapshot()
        assert snapshot["enabled"] is False
        assert not snapshot["counters"]
        assert not snapshot["histograms"]

    def test_default_registry_is_injectable(self):
        original = get_registry()
        try:
            mine = MetricsRegistry()
            assert set_registry(mine) is original
            assert get_registry() is mine
        finally:
            set_registry(original)


# ----------------------------------------------------------------------
# Trace spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_without_root_is_passthrough(self):
        assert trace.current_span() is None
        with trace.span("orphan") as current:
            assert current is None
        assert trace.current_span() is None
        assert trace.current_span_id() is None

    def test_nesting_builds_a_tree(self):
        collector = TraceCollector()
        with trace.root_span("root", collector=collector):
            with trace.span("child-1"):
                with trace.span("grandchild"):
                    pass
            with trace.span("child-2", tag="x"):
                pass
        (tree,) = collector.recent()
        assert tree["name"] == "root"
        names = [child["name"] for child in tree["children"]]
        assert names == ["child-1", "child-2"]
        assert tree["children"][0]["children"][0]["name"] == "grandchild"
        assert tree["children"][1]["attrs"] == {"tag": "x"}

    def test_thread_propagation_via_attach(self):
        from concurrent.futures import ThreadPoolExecutor

        collector = TraceCollector()
        with trace.root_span("root", collector=collector):
            parent = trace.current_span()

            def work(index):
                # Pool threads do not inherit the contextvar.
                assert trace.current_span() is None
                with trace.attach(parent):
                    with trace.span("task", index=index):
                        pass

            with ThreadPoolExecutor(max_workers=2) as pool:
                list(pool.map(work, range(3)))
        (tree,) = collector.recent()
        tasks = [c for c in tree["children"] if c["name"] == "task"]
        assert sorted(t["attrs"]["index"] for t in tasks) == [0, 1, 2]

    def test_remote_record_adoption_validates_parent(self):
        with trace.root_span("root") as root:
            with trace.remote_span("worker", root.span_id) as remote:
                with trace.span("inner"):
                    pass
            record = remote.to_record(root.span_id)
            root.adopt(record)
            with pytest.raises(ValueError):
                root.adopt(dataclasses.replace(record, parent_id="bogus"))
        tree = root.to_dict()
        workers = [c for c in tree["children"] if c["name"] == "worker"]
        assert len(workers) == 1
        assert workers[0]["remote"] is True
        assert workers[0]["children"][0]["name"] == "inner"

    def test_format_span_tree_renders_nesting(self):
        collector = TraceCollector()
        with trace.root_span("root", collector=collector):
            with trace.span("child"):
                pass
        rendered = format_span_tree(collector.recent()[0])
        assert "root" in rendered and "`- child" in rendered

    def test_collector_ring_and_slowlog(self):
        collector = TraceCollector(capacity=2, slow_capacity=8)
        for index in range(4):
            with trace.root_span("r", index=index, collector=collector):
                pass
        assert collector.recorded == 4
        recent = collector.recent()
        assert len(recent) == 2  # ring evicted the oldest
        assert [t["attrs"]["index"] for t in recent] == [3, 2]
        assert len(collector.slowest()) == 4  # slow log kept all


# ----------------------------------------------------------------------
# Executor propagation (engine + shards)
# ----------------------------------------------------------------------
class TestExecutorPropagation:
    def _batch(self, views, graph, executor):
        collector = TraceCollector()
        engine = QueryEngine(views, graph=graph, registry=MetricsRegistry())
        with trace.root_span("batch", collector=collector):
            engine.answer_batch([ABC, AB], executor=executor, workers=2)
        (tree,) = collector.recent()
        return tree

    def _find(self, tree, name):
        found = []
        stack = [tree]
        while stack:
            node = stack.pop()
            if node["name"] == name:
                found.append(node)
            stack.extend(node["children"])
        return found

    def test_serial_executor_emits_task_spans(self, views, graph):
        tree = self._batch(views, graph, "serial")
        batch = self._find(tree, "evaluate.batch")
        assert batch, format_span_tree(tree)
        tasks = self._find(batch[0], "evaluate.task")
        assert len(tasks) == 2
        assert all(not t["remote"] for t in tasks)

    def test_thread_executor_reattaches_worker_spans(self, views, graph):
        tree = self._batch(views, graph, "thread")
        batch = self._find(tree, "evaluate.batch")
        assert batch, format_span_tree(tree)
        tasks = self._find(batch[0], "evaluate.task")
        assert len(tasks) == 2, format_span_tree(tree)
        assert all(not t["remote"] for t in tasks)

    def test_process_executor_merges_remote_records(self, views, graph):
        tree = self._batch(views, graph, "process")
        tasks = self._find(tree, "evaluate.task")
        assert len(tasks) == 2, format_span_tree(tree)
        assert all(t["remote"] for t in tasks)
        assert all(t["attrs"]["pid"] for t in tasks)

    def test_shard_waves_nest_under_psim(self, graph):
        sharded = ShardedGraph(graph, make_partition(graph, 2, "hash"))
        collector = TraceCollector()
        with trace.root_span("shards", collector=collector):
            partial_max_simulation(AB, sharded, executor="thread")
        (tree,) = collector.recent()
        psim = self._find(tree, "psim")
        assert psim, format_span_tree(tree)
        assert psim[0]["attrs"]["shards"] == 2
        assert self._find(psim[0], "psim.wave"), format_span_tree(tree)
        assert self._find(psim[0], "psim.task"), format_span_tree(tree)


# ----------------------------------------------------------------------
# Plan-choice telemetry
# ----------------------------------------------------------------------
class TestPlanChoiceRecords:
    def _engine(self, views, graph):
        return QueryEngine(views, graph=graph, registry=MetricsRegistry())

    def test_record_matches_explain(self, views, graph):
        engine = self._engine(views, graph)
        plan = engine.plan(ABC)
        engine.execute(plan)
        (record,) = engine.plan_log()
        explain = plan.explain()
        assert record.strategy == plan.strategy == "matchjoin"
        assert f"strategy : {record.strategy}" in explain
        assert record.selection == plan.selection
        assert f"selection: {record.selection}" in explain
        assert record.views_used == plan.views_used
        for name in record.views_used:
            assert name in explain
        assert record.bounded == plan.bounded
        assert f"bounded  : {record.bounded}" in explain
        assert not record.cache_hit
        assert set(record.view_sizes) == set(plan.views_used)
        assert all(size > 0 for size in record.view_sizes.values())

    def test_direct_fallback_reason_recorded(self, views, graph):
        uncovered = build_pattern({"x": "C", "y": "A"}, [("x", "y")])
        engine = self._engine(views, graph)
        plan = engine.plan(uncovered)
        engine.execute(plan)
        (record,) = engine.plan_log()
        assert record.strategy == "direct"
        assert record.reason == "not-contained"
        assert f"strategy : direct ({record.reason})" in plan.explain()
        assert record.views_used == ()

    def test_record_to_dict_versioned(self, views, graph):
        engine = self._engine(views, graph)
        engine.execute(engine.plan(ABC))
        payload = engine.plan_log()[0].to_dict()
        assert payload["version"] == PLAN_RECORD_VERSION
        assert payload["fingerprint"]
        assert payload["elapsed_ms"] >= 0

    def test_plan_log_newest_first_and_limited(self, views, graph):
        engine = self._engine(views, graph)
        engine.execute(engine.plan(ABC))
        engine.execute(engine.plan(ABC))  # answer-cache hit
        records = engine.plan_log()
        assert len(records) == 2
        assert records[0].cache_hit and not records[1].cache_hit
        assert engine.plan_log(limit=1) == records[:1]

    def test_engine_counters_accumulate(self, views, graph):
        registry = MetricsRegistry()
        engine = QueryEngine(views, graph=graph, registry=registry)
        engine.execute(engine.plan(ABC))
        engine.execute(engine.plan(ABC))
        counters = registry.snapshot()["counters"]
        assert (
            counters["repro_engine_queries_total"]['{strategy="matchjoin"}']
            == 2
        )
        assert counters["repro_engine_answer_cache_hits_total"][""] == 1
        assert counters["repro_engine_answer_cache_misses_total"][""] == 1


# ----------------------------------------------------------------------
# Serving: epoch swaps, shed reasons, stats consistency
# ----------------------------------------------------------------------
def _make_server(**kwargs):
    graph = _graph()
    definitions = _definitions()
    tracker = IncrementalViewSet(definitions, graph)
    engine = QueryEngine(
        ViewSet(definitions), graph=graph, registry=MetricsRegistry()
    )
    engine.attach_maintenance(tracker)
    return QueryServer(engine, **kwargs)


class _Gate:
    """Holds every ``_evaluate`` call until released (30s failsafe)."""

    def __init__(self, server):
        self.entered = threading.Event()
        self.release = threading.Event()
        self._original = server._evaluate
        server._evaluate = self._gated

    def _gated(self, spec, epoch):
        self.entered.set()
        if not self.release.wait(timeout=30):
            raise RuntimeError("Gate never released")
        return self._original(spec, epoch)


async def _spin_until(predicate, timeout=10.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition never held")
        await asyncio.sleep(0.005)


class TestServingObservability:
    def test_metrics_survive_epoch_swap(self):
        async def scenario():
            server = _make_server()
            async with server:
                await server.query(ABC)
                before = server.stats()["metrics"]["counters"]
                await server.update(Delta().insert(5, 2))
                await server.query(ABC)
                after = server.stats()["metrics"]["counters"]
            return before, after

        before, after = asyncio.run(scenario())
        series = '{strategy="matchjoin"}'
        assert before["repro_engine_queries_total"][series] == 1
        # Same registry across the swap: totals accumulate, not reset.
        assert after["repro_engine_queries_total"][series] == 2
        assert after["repro_server_epoch_swaps_total"][""] == 1
        assert (
            after["repro_server_requests_total"]['{outcome="completed"}'] == 2
        )

    def test_request_trace_has_complete_span_tree(self):
        async def scenario():
            server = _make_server()
            async with server:
                await server.query(ABC)
            return server.traces.recent(1)[0], server.engine.plan_log(1)[0]

        tree, record = asyncio.run(scenario())
        assert tree["name"] == "server.query"
        assert tree["attrs"]["epoch"] == 0
        assert tree["attrs"]["outcome"] == "evaluated"
        assert "queue_wait_ms" in tree["attrs"]
        names = {child["name"] for child in tree["children"]}
        assert {"plan", "evaluate"} <= names, format_span_tree(tree)
        # The plan-choice record and the trace tell the same story.
        assert record.strategy == tree["attrs"]["strategy"]

    def test_traces_land_in_slow_log(self):
        async def scenario():
            server = _make_server()
            async with server:
                await server.query(ABC)
                await server.query(AB)
            return server.traces

        traces = asyncio.run(scenario())
        assert traces.recorded == 2
        slowest = traces.slowest()
        assert len(slowest) == 2
        assert slowest[0]["duration_ms"] >= slowest[1]["duration_ms"]

    def test_shed_reason_inflight_full(self):
        async def scenario():
            server = _make_server(max_inflight=1, max_queue=0)
            async with server:
                gate = _Gate(server)
                first = asyncio.ensure_future(server.query(AB))
                await _spin_until(
                    lambda: server.stats()["requests"]["inflight"] == 1
                )
                with pytest.raises(ServerOverloadedError):
                    await server.query(BC)
                gate.release.set()
                await first
                return server.stats()

        stats = asyncio.run(scenario())
        requests = stats["requests"]
        assert requests["shed"] == 1
        assert requests["shed_inflight_full"] == 1
        assert requests["shed_queue_full"] == 0
        shed = stats["metrics"]["counters"]["repro_server_shed_total"]
        assert shed['{reason="inflight-full"}'] == 1

    def test_shed_reason_queue_full(self):
        async def scenario():
            server = _make_server(max_inflight=1, max_queue=1)
            async with server:
                gate = _Gate(server)
                first = asyncio.ensure_future(server.query(AB))
                await _spin_until(gate.entered.is_set)
                # A second, distinct query parks in the queue.
                second = asyncio.ensure_future(server.query(BC))
                await _spin_until(
                    lambda: server.stats()["requests"]["admitted"] == 2
                )
                with pytest.raises(ServerOverloadedError):
                    await server.query(ABC)
                gate.release.set()
                await asyncio.gather(first, second)
                return server.stats()

        stats = asyncio.run(scenario())
        requests = stats["requests"]
        assert requests["shed"] == 1
        assert requests["shed_queue_full"] == 1
        assert requests["shed_inflight_full"] == 0
        shed = stats["metrics"]["counters"]["repro_server_shed_total"]
        assert shed['{reason="queue-full"}'] == 1

    def test_coalescing_owner_and_followers_counted(self):
        async def scenario():
            server = _make_server()
            async with server:
                gate = _Gate(server)
                futures = [
                    asyncio.ensure_future(server.query(AB)) for _ in range(4)
                ]
                await _spin_until(
                    lambda: server.stats()["requests"]["coalesced"] == 3
                )
                gate.release.set()
                await asyncio.gather(*futures)
                return server.stats()["requests"]

        requests = asyncio.run(scenario())
        assert requests["coalesce_owners"] == 1
        assert requests["coalesced"] == 3
        assert requests["evaluated"] == 1


# ----------------------------------------------------------------------
# Logging setup
# ----------------------------------------------------------------------
class TestLogging:
    def test_structured_formatter_renders_fields(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "hello %s", ("x",), None
        )
        record.fields = {"epoch": 3}
        line = StructuredFormatter().format(record)
        assert 'msg="hello x"' in line
        assert "level=info" in line
        assert "logger=repro.test" in line
        assert "epoch=3" in line

    def test_install_is_idempotent(self):
        logger = logging.getLogger("repro-obs-test")
        try:
            install("debug", logger_name="repro-obs-test")
            install("debug", logger_name="repro-obs-test")
            structured = [
                h for h in logger.handlers
                if getattr(h, "_repro_structured", False)
            ]
            assert len(structured) == 1
        finally:
            logger.handlers.clear()

    def test_install_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            install("verbose", logger_name="repro-obs-test")

    def test_library_modules_have_namespaced_loggers(self):
        import repro.core.matchjoin as matchjoin
        import repro.serve.server as server
        import repro.shard.psim as psim

        for module in (matchjoin, server, psim):
            assert module.log.name.startswith("repro.")

    def test_library_installs_no_handlers(self):
        import repro  # noqa: F401  (import side effects are the point)

        assert not logging.getLogger("repro").handlers

    def test_log_fields_helper(self):
        extra = log_fields(epoch=1, reason="queue-full")
        assert extra == {"fields": {"epoch": 1, "reason": "queue-full"}}
