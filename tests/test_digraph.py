"""Unit tests for the DataGraph substrate."""

import pytest

from repro.graph import DataGraph


def small_graph():
    g = DataGraph()
    g.add_node(1, labels="A", attrs={"x": 1})
    g.add_node(2, labels=["B", "C"])
    g.add_node(3, labels="B")
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    g.add_edge(1, 3)
    return g


class TestConstruction:
    def test_empty(self):
        g = DataGraph()
        assert len(g) == 0
        assert g.num_edges == 0
        assert g.size == 0

    def test_add_node_labels_string(self):
        g = DataGraph()
        g.add_node("n", labels="A")
        assert g.labels("n") == frozenset({"A"})

    def test_add_node_labels_iterable(self):
        g = DataGraph()
        g.add_node("n", labels=["A", "B"])
        assert g.labels("n") == frozenset({"A", "B"})

    def test_add_node_merges_labels(self):
        g = DataGraph()
        g.add_node("n", labels="A")
        g.add_node("n", labels="B")
        assert g.labels("n") == frozenset({"A", "B"})

    def test_add_node_merges_attrs(self):
        g = DataGraph()
        g.add_node("n", attrs={"x": 1})
        g.add_node("n", attrs={"y": 2})
        assert g.attrs("n") == {"x": 1, "y": 2}

    def test_add_edge_creates_nodes(self):
        g = DataGraph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_add_edge_idempotent(self):
        g = DataGraph()
        g.add_edge("a", "b")
        g.add_edge("a", "b")
        assert g.num_edges == 1

    def test_constructor_bulk(self):
        g = DataGraph(
            nodes=[("a", "A", None), ("b", "B", {"k": 1})],
            edges=[("a", "b")],
        )
        assert g.num_nodes == 2
        assert g.attrs("b") == {"k": 1}

    def test_size(self):
        g = small_graph()
        assert g.size == 3 + 3


class TestMutation:
    def test_remove_edge(self):
        g = small_graph()
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 2
        assert 1 not in g.predecessors(2)

    def test_remove_edge_missing_raises(self):
        g = small_graph()
        with pytest.raises(KeyError):
            g.remove_edge(3, 1)

    def test_remove_node(self):
        g = small_graph()
        g.remove_node(2)
        assert 2 not in g
        assert g.num_edges == 1
        assert g.has_edge(1, 3)

    def test_remove_node_missing_raises(self):
        g = DataGraph()
        with pytest.raises(KeyError):
            g.remove_node("ghost")


class TestInspection:
    def test_degrees(self):
        g = small_graph()
        assert g.out_degree(1) == 2
        assert g.in_degree(3) == 2
        assert g.in_degree(1) == 0

    def test_successors_predecessors(self):
        g = small_graph()
        assert g.successors(1) == {2, 3}
        assert g.predecessors(3) == {1, 2}

    def test_edges_iteration(self):
        g = small_graph()
        assert set(g.edges()) == {(1, 2), (2, 3), (1, 3)}

    def test_nodes_with_label(self):
        g = small_graph()
        assert set(g.nodes_with_label("B")) == {2, 3}
        assert set(g.nodes_with_label("Z")) == set()

    def test_repr(self):
        assert "nodes=3" in repr(small_graph())


class TestTraversal:
    def test_descendants_within_one(self):
        g = small_graph()
        assert g.descendants_within(1, 1) == {2: 1, 3: 1}

    def test_descendants_within_two(self):
        g = DataGraph(edges=[(1, 2), (2, 3), (3, 4)])
        assert g.descendants_within(1, 2) == {2: 1, 3: 2}

    def test_descendants_within_zero(self):
        g = small_graph()
        assert g.descendants_within(1, 0) == {}

    def test_descendants_cycle_includes_self(self):
        g = DataGraph(edges=[(1, 2), (2, 1)])
        assert g.descendants_within(1, 2) == {2: 1, 1: 2}

    def test_self_loop(self):
        g = DataGraph(edges=[(1, 1)])
        assert g.descendants_within(1, 3) == {1: 1}


class TestCopy:
    def test_copy_independent(self):
        g = small_graph()
        h = g.copy()
        h.add_edge(3, 1)
        assert not g.has_edge(3, 1)
        h.attrs(1)["x"] = 99
        assert g.attrs(1)["x"] == 1

    def test_copy_equal_structure(self):
        g = small_graph()
        h = g.copy()
        assert set(h.edges()) == set(g.edges())
        assert h.labels(2) == g.labels(2)
