"""Bounded pattern queries over a citation network (Section VI).

Bibliometric question: find recent DB papers whose line of influence
reaches classic theory work *within three citation hops*, where the
intermediate work is itself well connected to AI.  Edge-to-path
semantics (bounded simulation) is exactly what "within k hops" needs;
plain simulation would only see direct citations.

The example also shows the distance index I(V): bounded views
materialize node pairs *with their actual distances*, letting
BMatchJoin filter pairs against each query edge's own bound without
touching the graph.

Run:  python examples/citation_analysis.py
"""

import time

from repro import BoundedPattern, P, ViewDefinition, ViewSet, answer_with_views, bounded_match
from repro.datasets import citation_graph


def influence_query() -> BoundedPattern:
    recent_db = (P("year") >= 2005).with_label("DB")
    any_ai = (P("year") >= 1980).with_label("AI")
    classic_theory = (P("year") <= 2000).with_label("THEORY")

    q = BoundedPattern()
    q.add_node("paper", recent_db)
    q.add_node("bridge", any_ai)
    q.add_node("root", classic_theory)
    q.add_edge("paper", "bridge", 2)   # cites AI work within 2 hops
    q.add_edge("bridge", "root", 3)    # which builds on classic theory within 3
    q.add_edge("paper", "root", 3)     # and the paper reaches the root directly too
    return q


def influence_views() -> ViewSet:
    """Cached bounded views: reachability summaries a bibliometrics
    group would maintain."""
    recent_db = (P("year") >= 2005).with_label("DB")
    any_ai = (P("year") >= 1980).with_label("AI")
    classic_theory = (P("year") <= 2000).with_label("THEORY")

    v1 = BoundedPattern()
    v1.add_node("db", recent_db)
    v1.add_node("ai", any_ai)
    v1.add_edge("db", "ai", 2)

    v2 = BoundedPattern()
    v2.add_node("ai", any_ai)
    v2.add_node("th", classic_theory)
    v2.add_edge("ai", "th", 3)

    v3 = BoundedPattern()
    v3.add_node("db", recent_db)
    v3.add_node("th", classic_theory)
    v3.add_edge("db", "th", 3)

    return ViewSet(
        [
            ViewDefinition("db-to-ai", v1),
            ViewDefinition("ai-to-theory", v2),
            ViewDefinition("db-to-theory", v3),
        ]
    )


def main() -> None:
    print("building citation network ...")
    graph = citation_graph()
    print(f"  {graph.num_nodes} papers, {graph.num_edges} citations (a DAG)")

    views = influence_views()
    t0 = time.perf_counter()
    views.materialize(graph)
    t_mat = time.perf_counter() - t0
    ext = views.extension("db-to-ai")
    sample_pair = next(iter(ext.pairs_of(("db", "ai"))), None)
    print(f"materialized bounded views in {t_mat:.2f}s; I(V) records e.g. "
          f"pair {sample_pair} at distance "
          f"{ext.distance_of(sample_pair) if sample_pair else '-'}")

    query = influence_query()

    t0 = time.perf_counter()
    direct = bounded_match(query, graph)
    t_direct = time.perf_counter() - t0

    t0 = time.perf_counter()
    answer = answer_with_views(query, views)
    t_views = time.perf_counter() - t0
    assert answer.result.edge_matches == direct.edge_matches

    print(f"\ndirect BMatch:       {t_direct * 1000:8.1f} ms")
    print(f"BMatchJoin (views):  {t_views * 1000:8.1f} ms "
          f"({t_views / t_direct:.0%} of direct)")

    papers = sorted(answer.result.matches_of("paper"))[:5]
    print(f"\n{answer.result.result_size} influence pairs; sample recent DB "
          f"papers with classic-theory roots: {papers}")


if __name__ == "__main__":
    main()
