"""Video recommendation analysis with the Fig. 7 predicate views.

Uses the YouTube-like network and the paper's twelve views P1..P12,
whose nodes carry Boolean search conditions over video attributes
(category C, age A, length L, rate R, visits V).  A content analyst
asks for "popular highly-rated Music videos recommending each other,
feeding Sports content" -- stitched from cached view shapes so the
query is answerable from the cache.

Run:  python examples/youtube_recommendation.py
"""

import time

from repro import P, Pattern, answer_with_views, match
from repro.datasets import youtube_graph, youtube_views


def analyst_query() -> Pattern:
    """Popular Music videos in mutual recommendation (view P1's shape)
    that are also cross-linked both ways with Sports content (view
    P11's shape).

    Each node condition and each edge's local shape matches a cached
    view, so the query is contained in the view set -- an analyst whose
    query strays outside the cached shapes gets a NotContainedError
    listing the uncovered edges instead (Theorem 1: no view-only
    rewriting exists then).
    """
    music_popular = (P("C") == "Music") & (P("V") >= 10_000)
    music_rated = (P("C") == "Music") & (P("R") >= 4)
    sports = P("C") == "Sports"

    q = Pattern()
    q.add_node("hit", music_popular)
    q.add_node("quality", music_rated)
    q.add_node("cross", sports)
    q.add_edge("hit", "quality")
    q.add_edge("quality", "hit")
    q.add_edge("cross", "hit")
    q.add_edge("hit", "cross")
    return q


def main() -> None:
    print("building YouTube-like recommendation network ...")
    graph = youtube_graph()
    print(f"  {graph.num_nodes} videos, {graph.num_edges} related-list edges")

    views = youtube_views()
    t0 = time.perf_counter()
    views.materialize(graph)
    print(f"materialized {views.cardinality} predicate views in "
          f"{time.perf_counter() - t0:.2f}s; extensions are "
          f"{views.extension_fraction(graph):.1%} of |G|")

    query = analyst_query()

    t0 = time.perf_counter()
    direct = match(query, graph)
    t_direct = time.perf_counter() - t0

    t0 = time.perf_counter()
    answer = answer_with_views(query, views, selection="minimum")
    t_views = time.perf_counter() - t0
    assert answer.result.edge_matches == direct.edge_matches

    print(f"\ndirect Match:       {t_direct * 1000:7.1f} ms")
    print(f"view-based answer:  {t_views * 1000:7.1f} ms "
          f"({t_views / t_direct:.0%} of direct, views {answer.views_used})")

    pairs = sorted(answer.result.edge_matches_of(("hit", "quality")))[:5]
    print(f"\n{answer.result.result_size} match pairs; sample mutual "
          f"recommendations (hit -> quality): {pairs}")


if __name__ == "__main__":
    main()
