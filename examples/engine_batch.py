"""The QueryEngine on the synthetic dataset: plans, caches, parallelism.

Builds the synthetic graph and its 22-view suite (the paper's Section
VII synthetic setup, scaled down), then demonstrates the engine layer:

1. **plan inspection** -- why a query runs MatchJoin over views versus
   direct simulation on G;
2. **warm-cache reuse** -- a repeated batch is answered entirely from
   the LRU answer cache;
3. **parallel batch** -- the same batch fanned across a process pool.

Run:  python examples/engine_batch.py
"""

from time import perf_counter

from repro import QueryEngine
from repro.bench import workloads
from repro.datasets import random_graph
from repro.datasets.patterns import generate_views, query_from_views


def build_workload():
    graph = random_graph(3000, 6000, seed=17)
    views = generate_views(tuple(f"l{i}" for i in range(10)), 22, seed=17)
    views.materialize(graph)
    queries = [
        query_from_views(views, nodes, edges, seed=seed)
        for seed, (nodes, edges) in enumerate(
            [(4, 4), (4, 6), (4, 8), (6, 6), (6, 9), (4, 4), (6, 6), (4, 6)]
        )
    ]
    return graph, views, queries


def main() -> None:
    graph, views, queries = build_workload()
    print(
        f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges; "
        f"views: {views.cardinality} (extensions "
        f"{views.extension_fraction(graph):.1%} of |G|)"
    )

    engine = QueryEngine(views, graph=graph, selection="minimal")

    # 1. Plan inspection: containment runs once, the plan is reusable.
    plan = engine.plan(queries[0])
    print("\nplan for query 0:")
    print(plan.explain())

    # 2. Cold batch, then the same batch against a warm cache.
    started = perf_counter()
    cold = engine.answer_batch(queries)
    cold_s = perf_counter() - started
    started = perf_counter()
    warm = engine.answer_batch(queries)
    warm_s = perf_counter() - started
    hits = sum(r.stats.cache_hit for r in warm)
    print(
        f"\ncold batch: {len(cold)} queries in {cold_s * 1e3:.1f} ms "
        f"(strategies: {sorted({r.stats.strategy for r in cold})})"
    )
    print(
        f"warm batch: {hits}/{len(warm)} cache hits in {warm_s * 1e3:.1f} ms "
        f"({cold_s / max(warm_s, 1e-9):.0f}x faster)"
    )

    # 3. Parallel batch on a fresh engine (cold caches, process pool).
    parallel_engine = QueryEngine(views, graph=graph)
    started = perf_counter()
    parallel = parallel_engine.answer_batch(
        queries, executor="process", workers=4
    )
    parallel_s = perf_counter() - started
    workers = {r.stats.pid for r in parallel if not r.stats.cache_hit}
    print(
        f"parallel batch: {len(parallel)} queries across "
        f"{len(workers)} workers in {parallel_s * 1e3:.1f} ms"
    )

    for a, b, c in zip(cold, warm, parallel):
        assert a.edge_matches == b.edge_matches == c.edge_matches
    print("\nall three executions agree; cache stats:")
    for name, counters in engine.cache_stats().items():
        print(
            f"  {name}: {counters['hits']} hits, {counters['misses']} misses"
        )


if __name__ == "__main__":
    main()
