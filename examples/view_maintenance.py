"""Keeping cached views fresh while the social graph changes.

A recommendation service caches pattern views and answers queries from
them (never touching the big graph).  The graph keeps evolving: follows
appear and disappear.  This example maintains the cached extensions
incrementally -- deletions prune only the affected matches; irrelevant
insertions are O(1)-ish no-ops -- and shows the maintained cache always
answering exactly like a fresh rematerialization.

Run:  python examples/view_maintenance.py
"""

import random
import time

from repro import DataGraph, Pattern, ViewDefinition, match
from repro.views.maintenance import IncrementalView
from repro.views.view import materialize


def build_graph(num_nodes: int = 5_000, num_edges: int = 15_000, seed: int = 3):
    rng = random.Random(seed)
    roles = ("user", "creator", "curator")
    g = DataGraph()
    for node in range(num_nodes):
        g.add_node(node, labels=roles[rng.randrange(3)])
    added = 0
    while added < num_edges:
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a != b and not g.has_edge(a, b):
            g.add_edge(a, b)
            added += 1
    return g, rng


def influence_view() -> ViewDefinition:
    """Creators followed by curators who follow other creators."""
    p = Pattern()
    p.add_node("creator", "creator")
    p.add_node("curator", "curator")
    p.add_node("next", "creator")
    p.add_edge("curator", "creator")
    p.add_edge("curator", "next")
    return ViewDefinition("influence", p)


def main() -> None:
    graph, rng = build_graph()
    view = influence_view()

    tracker = IncrementalView(view, graph)
    print(f"initial extension: {tracker.extension().num_pairs} pairs")

    # A day of graph churn: 300 deletions, 300 insertions.
    edges = list(graph.edges())
    deletions = rng.sample(edges, 300)
    insertions = []
    while len(insertions) < 300:
        a, b = rng.randrange(len(graph)), rng.randrange(len(graph))
        if a != b and not graph.has_edge(a, b):
            insertions.append((a, b))
            graph.add_edge(a, b)  # keep a reference copy in sync
    for a, b in deletions:
        graph.remove_edge(a, b)

    t0 = time.perf_counter()
    for a, b in deletions:
        tracker.delete_edge(a, b)
    t_del = time.perf_counter() - t0

    t0 = time.perf_counter()
    for a, b in insertions:
        tracker.insert_edge(a, b)
    t_ins = time.perf_counter() - t0

    t0 = time.perf_counter()
    fresh = materialize(view, graph)
    t_fresh = time.perf_counter() - t0

    maintained = tracker.extension()
    assert maintained.edge_matches == fresh.edge_matches
    print(f"after churn: {maintained.num_pairs} pairs")
    print(f"300 deletions maintained in  {t_del * 1000:8.1f} ms "
          f"({t_del / 300 * 1e6:.0f} us/update)")
    print(f"300 insertions maintained in {t_ins * 1000:8.1f} ms "
          f"({t_ins / 300 * 1e6:.0f} us/update)")
    print(f"one fresh rematerialization: {t_fresh * 1000:8.1f} ms "
          f"-- rematerializing per update would cost "
          f"{t_fresh * 600 * 1000:.0f} ms for this churn")
    print("maintained extension == fresh rematerialization: OK")


if __name__ == "__main__":
    main()
