"""Keeping cached views fresh while the social graph changes.

A recommendation service caches pattern views and answers queries from
them (never touching the big graph).  The graph keeps evolving: follows
appear and disappear.  This example drives the delta-driven maintenance
pipeline end to end:

* a day of churn arrives as batched :class:`~repro.views.Delta` updates
  applied through an :class:`~repro.views.maintenance.IncrementalViewSet`
  -- deletions prune only the affected matches, insertions revive
  matches inside the affected area, irrelevant updates are near-free;
* a :class:`~repro.engine.QueryEngine` follows the stream and keeps its
  answer cache keyed per view: queries over views the churn never
  touched keep hitting the cache while the changed views' answers
  refresh;
* the maintained cache is asserted equal to a from-scratch
  rematerialization, and the per-update cost is compared against
  rematerializing on every update.

Run:  python examples/view_maintenance.py
"""

import random
import time

from repro import DataGraph, Pattern, ViewDefinition, match
from repro.engine import QueryEngine
from repro.views import Delta, ViewSet
from repro.views.maintenance import IncrementalViewSet
from repro.views.view import materialize


def build_graph(num_nodes: int = 5_000, num_edges: int = 15_000, seed: int = 3):
    rng = random.Random(seed)
    roles = ("user", "creator", "curator")
    g = DataGraph()
    for node in range(num_nodes):
        g.add_node(node, labels=roles[rng.randrange(3)])
    added = 0
    while added < num_edges:
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a != b and not g.has_edge(a, b):
            g.add_edge(a, b)
            added += 1
    return g, rng


def influence_view() -> ViewDefinition:
    """Creators followed by curators who follow other creators."""
    p = Pattern()
    p.add_node("creator", "creator")
    p.add_node("curator", "curator")
    p.add_node("next", "creator")
    p.add_edge("curator", "creator")
    p.add_edge("curator", "next")
    return ViewDefinition("influence", p)


def audience_view() -> ViewDefinition:
    """Users following curators -- churn below rarely touches this."""
    p = Pattern()
    p.add_node("user", "user")
    p.add_node("curator", "curator")
    p.add_edge("user", "curator")
    return ViewDefinition("audience", p)


def main() -> None:
    graph, rng = build_graph()
    definitions = [influence_view(), audience_view()]

    tracker = IncrementalViewSet(definitions, graph)
    engine = QueryEngine(ViewSet(definitions), graph=graph)
    engine.attach_maintenance(tracker)

    influence_q = influence_view().pattern
    audience_q = audience_view().pattern
    engine.answer(influence_q)
    engine.answer(audience_q)
    print(f"initial extension: "
          f"{tracker.extension('influence').num_pairs} influence pairs, "
          f"{tracker.extension('audience').num_pairs} audience pairs")

    # A day of graph churn in batched deltas: follows between creators
    # and curators appear and disappear; the audience view's user ->
    # curator edges are mostly left alone.
    creators_curators = [
        node for node in tracker.graph.nodes()
        if tracker.graph.labels(node) & {"creator", "curator"}
    ]
    churn_sources = set(creators_curators[:2000])
    edges = [
        edge for edge in tracker.graph.edges()
        if edge[0] in churn_sources
    ]
    batches = []
    deletions = rng.sample(edges, 300)
    cursor = 0
    while cursor < len(deletions):
        delta = Delta()
        for edge in deletions[cursor : cursor + 25]:
            delta.delete(*edge)
        inserted = 0
        while inserted < 25:
            a = rng.choice(creators_curators)
            b = rng.choice(creators_curators)
            if a != b and not tracker.graph.has_edge(a, b):
                delta.insert(a, b)
                inserted += 1
        batches.append(delta)
        cursor += 25

    t0 = time.perf_counter()
    changed_rounds = 0
    audience_hits = 0
    for delta in batches:
        report = tracker.apply_delta(delta)
        if report.changed_views:
            changed_rounds += 1
        # The engine refreshes only what each batch changed: answers
        # over the untouched audience view keep hitting the cache.
        engine.answer(influence_q)
        if engine.answer(audience_q).stats.cache_hit:
            audience_hits += 1
    t_stream = time.perf_counter() - t0

    t0 = time.perf_counter()
    fresh = materialize(influence_view(), tracker.graph)
    t_fresh = time.perf_counter() - t0

    maintained = tracker.extension("influence")
    assert maintained.edge_matches == fresh.edge_matches
    assert (
        tracker.extension("audience").edge_matches
        == materialize(audience_view(), tracker.graph).edge_matches
    )
    stats = tracker.stats()["influence"]
    total_updates = sum(len(d) for d in batches)
    print(f"after churn: {maintained.num_pairs} influence pairs")
    print(f"{total_updates} updates in {len(batches)} delta batches "
          f"maintained in {t_stream * 1000:8.1f} ms "
          f"({t_stream / total_updates * 1e6:.0f} us/update, "
          f"queries served throughout)")
    print(f"  influence: {stats.incremental_inserts} incremental / "
          f"{stats.irrelevant_inserts} irrelevant inserts, "
          f"{stats.deletions} deletions, "
          f"{stats.revived_pairs} pairs revived, "
          f"{stats.removed_pairs} pruned")
    print(f"  audience answer cache hits: {audience_hits}/{len(batches)} "
          f"batches (churn touched it rarely)")
    print(f"one fresh rematerialization: {t_fresh * 1000:8.1f} ms "
          f"-- rematerializing per update would cost "
          f"{t_fresh * total_updates * 1000:.0f} ms for this churn")
    print("maintained extensions == fresh rematerialization: OK")


if __name__ == "__main__":
    main()
