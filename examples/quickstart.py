"""Quickstart: the paper's running example (Fig. 1), end to end.

Builds the recommendation network G, the pattern query Qs (find a team
of PM / DBA / PRG with a collaboration cycle), defines the two views V1
and V2, and answers Qs using only the materialized views -- then checks
the result against direct evaluation.

Run:  python examples/quickstart.py
"""

from repro import (
    DataGraph,
    Pattern,
    ViewDefinition,
    ViewSet,
    answer_with_views,
    contains,
    match,
)


def build_recommendation_network() -> DataGraph:
    """The data graph G of Fig. 1(a)."""
    g = DataGraph()
    people = {
        "Bob": "PM", "Walt": "PM",
        "Mat": "DBA", "Fred": "DBA", "Mary": "DBA",
        "Dan": "PRG", "Pat": "PRG", "Bill": "PRG",
        "Jean": "BA", "Emmy": "ST",
    }
    for name, job in people.items():
        g.add_node(name, labels=job)
    collaborations = [
        ("Bob", "Mat"), ("Walt", "Mat"), ("Bob", "Dan"), ("Walt", "Bill"),
        ("Fred", "Pat"), ("Mat", "Pat"), ("Mary", "Bill"),
        ("Dan", "Fred"), ("Pat", "Mary"), ("Pat", "Mat"), ("Bill", "Mat"),
        ("Walt", "Jean"), ("Jean", "Emmy"),
    ]
    for edge in collaborations:
        g.add_edge(*edge)
    return g


def build_team_query() -> Pattern:
    """The pattern Qs of Fig. 1(c): a PM supervising a DBA and a PRG,
    with DBA/PRG pairs in a collaboration cycle."""
    q = Pattern()
    q.add_node("PM", "PM")
    q.add_node("DBA1", "DBA")
    q.add_node("DBA2", "DBA")
    q.add_node("PRG1", "PRG")
    q.add_node("PRG2", "PRG")
    q.add_edge("PM", "DBA1")
    q.add_edge("PM", "PRG2")
    q.add_edge("DBA1", "PRG1")
    q.add_edge("PRG1", "DBA2")
    q.add_edge("DBA2", "PRG2")
    q.add_edge("PRG2", "DBA1")
    return q


def build_views() -> ViewSet:
    """The views V1 (PM supervising DBA and PRG) and V2 (DBA/PRG
    collaboration cycle) of Fig. 1(b)."""
    v1 = Pattern()
    v1.add_node("PM", "PM")
    v1.add_node("DBA", "DBA")
    v1.add_node("PRG", "PRG")
    v1.add_edge("PM", "DBA")
    v1.add_edge("PM", "PRG")

    v2 = Pattern()
    v2.add_node("DBA", "DBA")
    v2.add_node("PRG", "PRG")
    v2.add_edge("DBA", "PRG")
    v2.add_edge("PRG", "DBA")

    return ViewSet([ViewDefinition("V1", v1), ViewDefinition("V2", v2)])


def main() -> None:
    graph = build_recommendation_network()
    query = build_team_query()
    views = build_views()

    # 1. Containment: can Qs be answered using V at all?  (Theorem 1)
    containment = contains(query, views)
    print(f"Qs contained in V: {containment.holds}")
    print(f"lambda maps {len(containment.mapping)} query edges "
          f"to view edges of {containment.views_used()}")

    # 2. Materialize the views once (in production this cache would be
    #    maintained incrementally as G changes).
    views.materialize(graph)
    print(f"view extensions hold {views.extension_size} items, "
          f"{views.extension_fraction(graph):.1%} of |G|")

    # 3. Answer the query from the views alone -- G is not touched.
    answer = answer_with_views(query, views)
    print("\nQs(G) computed by MatchJoin from the views:")
    print(answer.result.pretty())

    # 4. Cross-check against direct evaluation (Example 2's table).
    direct = match(query, graph)
    assert answer.result.edge_matches == direct.edge_matches
    print("\nMatchJoin agrees with direct evaluation (Theorem 1). "
          f"Views used: {answer.views_used}")


if __name__ == "__main__":
    main()
