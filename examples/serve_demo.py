"""Serving pattern queries while the graph keeps changing.

The batch pipeline (``examples/view_maintenance.py``) assumes one
driver: apply a delta, then query.  A service has neither luxury --
queries arrive *while* maintenance runs, and identical queries arrive
together.  This example runs the serving layer in-process:

* a :class:`~repro.serve.QueryServer` wraps a maintenance-attached
  :class:`~repro.engine.QueryEngine`; readers evaluate against
  immutable *epoch* snapshots and never block on maintenance;
* an update task streams :class:`~repro.views.Delta` batches; each one
  builds epoch N+1 on a maintenance thread while in-flight readers
  drain on epoch N (watch ``swaps`` / ``drained`` climb);
* reader tasks hammer a small query mix concurrently -- identical
  in-flight queries *coalesce* into one evaluation, repeats hit the
  served-answer cache (watch ``coalesced`` / ``cache_hits``);
* every answer is stamped with the epoch it was served from, and the
  example re-checks a sample of answers against direct evaluation on
  that epoch's snapshot.

Run:  python examples/serve_demo.py
"""

import asyncio
import random

from repro import DataGraph, Pattern, ViewDefinition, match
from repro.engine import QueryEngine
from repro.serve import QueryServer
from repro.views import Delta, ViewSet
from repro.views.maintenance import IncrementalViewSet


def build_graph(num_nodes: int = 600, num_edges: int = 2_400, seed: int = 11):
    rng = random.Random(seed)
    roles = ("user", "creator", "curator")
    g = DataGraph()
    for node in range(num_nodes):
        g.add_node(node, labels=roles[rng.randrange(3)])
    added = 0
    while added < num_edges:
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a != b and not g.has_edge(a, b):
            g.add_edge(a, b)
            added += 1
    return g, rng


def two_hop(name: str, first: str, second: str, third: str) -> ViewDefinition:
    p = Pattern()
    p.add_node("a", first)
    p.add_node("b", second)
    p.add_node("c", third)
    p.add_edge("a", "b")
    p.add_edge("b", "c")
    return ViewDefinition(name, p)


def edge_query(src: str, dst: str) -> Pattern:
    p = Pattern()
    p.add_node("x", src)
    p.add_node("y", dst)
    p.add_edge("x", "y")
    return p


async def main() -> None:
    graph, rng = build_graph()
    definitions = [
        two_hop("uc2", "user", "creator", "curator"),
        two_hop("cu2", "curator", "user", "creator"),
    ]
    tracker = IncrementalViewSet(definitions, graph)
    engine = QueryEngine(ViewSet(definitions), graph=graph)
    engine.attach_maintenance(tracker)

    queries = [
        edge_query("user", "creator"),
        edge_query("creator", "curator"),
        edge_query("curator", "user"),
    ]

    async with QueryServer(engine, max_inflight=4, max_queue=32) as server:
        sampled = []

        async def reader(rounds: int) -> None:
            for _ in range(rounds):
                pattern = rng.choice(queries)
                answer = await server.query(pattern)
                sampled.append((pattern, answer))
                await asyncio.sleep(0)

        async def updater(batches: int) -> None:
            # The tracker maintains its own graph copy (the engine
            # adopts it on attach) -- probe *that* for edge existence.
            live = tracker.graph
            nodes = list(range(graph.num_nodes))
            for _ in range(batches):
                delta = Delta()
                for _ in range(12):
                    a, b = rng.sample(nodes, 2)
                    if live.has_edge(a, b):
                        delta.delete(a, b)
                    else:
                        delta.insert(a, b)
                outcome = await server.update(delta)
                print(
                    f"epoch {outcome.epoch}: applied {outcome.report.applied} "
                    f"ops, changed views: "
                    f"{', '.join(outcome.report.changed_views) or '(none)'}"
                )
                await asyncio.sleep(0)

        await asyncio.gather(*(reader(40) for _ in range(6)), updater(8))

        stats = server.stats()
        print("\nepochs :", stats["epoch"])
        req = stats["requests"]
        print(
            "readers:", req["completed"], "completed,",
            req["coalesced"], "coalesced,",
            req["cache_hits"], "cache hits,",
            req["evaluated"], "evaluated,",
            req["shed"], "shed",
        )

        # Spot-check: answers served from the final epoch must equal
        # direct evaluation on the maintained graph (earlier epochs'
        # snapshots are superseded -- the property test covers those).
        final = server.current_epoch
        checked = 0
        for pattern, answer in sampled:
            if answer.epoch != final:
                continue
            expected = match(pattern, tracker.graph)
            assert answer.result.edge_matches == expected.edge_matches
            checked += 1
        print(
            f"spot-checked {checked}/{len(sampled)} answers "
            f"(those served from the final epoch {final}) "
            "against direct evaluation"
        )

    print("server drained and closed cleanly")


if __name__ == "__main__":
    asyncio.run(main())
