"""Team finding in a large organization network (the paper's motivating
scenario, at scale).

An HR department keeps a cache of views over the company collaboration
network -- "who worked well under whom", "mutual mentorship cycles" --
and answers ad-hoc team-assembly queries from the cache, comparing the
three view-selection strategies (all / minimal / minimum) and the
direct-evaluation baseline.

Run:  python examples/team_finding.py
"""

import random
import time

from repro import (
    DataGraph,
    Pattern,
    ViewDefinition,
    ViewSet,
    answer_with_views,
    match,
)

ROLES = ("PM", "DBA", "PRG", "BA", "ST", "UX")


def build_org_network(
    num_people: int = 20_000, num_links: int = 60_000, seed: int = 42
) -> DataGraph:
    """A synthetic collaboration network with role labels, team locality
    and mutual collaboration edges."""
    rng = random.Random(seed)
    g = DataGraph()
    teams = max(1, num_people // 50)
    team_of = {}
    for person in range(num_people):
        role = ROLES[rng.randrange(len(ROLES))]
        team_of[person] = rng.randrange(teams)
        g.add_node(person, labels=role, attrs={"team": team_of[person]})
    members_by_team = {}
    for person, team in team_of.items():
        members_by_team.setdefault(team, []).append(person)
    added = 0
    while added < num_links:
        source = rng.randrange(num_people)
        if rng.random() < 0.7:  # collaborations are mostly within teams
            pool = members_by_team[team_of[source]]
            target = pool[rng.randrange(len(pool))]
        else:
            target = rng.randrange(num_people)
        if source == target or g.has_edge(source, target):
            continue
        g.add_edge(source, target)
        added += 1
        if rng.random() < 0.4 and not g.has_edge(target, source):
            g.add_edge(target, source)
            added += 1
    return g


def build_view_cache() -> ViewSet:
    """Views an HR department would plausibly cache."""
    def chain(name, roles):
        p = Pattern()
        for i, role in enumerate(roles):
            p.add_node(i, role)
        for i in range(len(roles) - 1):
            p.add_edge(i, i + 1)
        return ViewDefinition(name, p)

    def cycle(name, roles):
        p = Pattern()
        for i, role in enumerate(roles):
            p.add_node(i, role)
        for i in range(len(roles)):
            p.add_edge(i, (i + 1) % len(roles))
        return ViewDefinition(name, p)

    def star(name, center, leaves):
        p = Pattern()
        p.add_node("c", center)
        for i, leaf in enumerate(leaves):
            p.add_node(i, leaf)
            p.add_edge("c", i)
        return ViewDefinition(name, p)

    return ViewSet(
        [
            star("pm-supervision", "PM", ["DBA", "PRG"]),
            cycle("dba-prg-mentorship", ["DBA", "PRG"]),
            cycle("prg-peer-review", ["PRG", "PRG"]),
            chain("analyst-pipeline", ["BA", "PM", "ST"]),
            chain("design-handoff", ["UX", "PRG"]),
            star("qa-coverage", "ST", ["PRG", "DBA"]),
            cycle("ba-ux-loop", ["BA", "UX"]),
            chain("pm-chain", ["PM", "PM"]),
        ]
    )


def team_query() -> Pattern:
    """Find a PM whose DBA and PRG reports sit in a mentorship cycle,
    with QA coverage on the programmer -- a realistic, cyclic pattern."""
    q = Pattern()
    q.add_node("lead", "PM")
    q.add_node("dba", "DBA")
    q.add_node("prg", "PRG")
    q.add_node("qa", "ST")
    q.add_edge("lead", "dba")
    q.add_edge("lead", "prg")
    q.add_edge("dba", "prg")
    q.add_edge("prg", "dba")
    q.add_edge("qa", "prg")
    q.add_edge("qa", "dba")
    return q


def main() -> None:
    print("building organization network ...")
    graph = build_org_network()
    print(f"  {graph.num_nodes} people, {graph.num_edges} collaboration links")

    views = build_view_cache()
    t0 = time.perf_counter()
    views.materialize(graph)
    print(f"materialized {views.cardinality} views in "
          f"{time.perf_counter() - t0:.2f}s "
          f"({views.extension_fraction(graph):.1%} of |G|)")

    query = team_query()

    t0 = time.perf_counter()
    direct = match(query, graph)
    t_direct = time.perf_counter() - t0
    print(f"\ndirect Match:            {t_direct * 1000:7.1f} ms "
          f"({direct.result_size} match pairs)")

    for selection in ("all", "minimal", "minimum"):
        t0 = time.perf_counter()
        answer = answer_with_views(query, views, selection=selection)
        elapsed = time.perf_counter() - t0
        assert answer.result.edge_matches == direct.edge_matches
        print(f"MatchJoin ({selection:7s}):    {elapsed * 1000:7.1f} ms "
              f"using views {answer.views_used}")

    candidates = sorted(direct.matches_of("lead"))[:5]
    print(f"\nexample team leads found: {candidates}")


if __name__ == "__main__":
    main()
