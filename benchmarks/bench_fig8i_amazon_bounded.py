"""Fig. 8(i): BMatch vs BMatchJoin_mnl vs BMatchJoin_min, varying |Qb|
(Amazon, fe=2).  Full series: python -m repro.bench.run_all --only fig8i."""

import pytest

from repro.core.bounded.bmatchjoin import bounded_match_join
from repro.simulation import bounded_match

from common import once, prepare_bounded

SIZES = [(4, 6), (6, 9), (8, 12)]


@pytest.fixture(scope="module")
def prepared(scale):
    return prepare_bounded("amazon", 2, SIZES, scale)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8i_bmatch(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, bounded_match, p.query, p.graph)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8i_bmatchjoin_mnl(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, bounded_match_join, p.query, p.minimal, p.views)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8i_bmatchjoin_min(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, bounded_match_join, p.query, p.minimum, p.views)
