"""Fig. 8(k): varying the edge bound fe(e) on YouTube, pattern (4,8).
Full series: python -m repro.bench.run_all --only fig8k."""

import pytest

from repro.core.bounded.bmatchjoin import bounded_match_join
from repro.simulation import bounded_match

from common import once, prepare_bounded

BOUNDS = [2, 4, 6]
SIZE = (4, 8)


@pytest.fixture(scope="module")
def prepared(scale):
    # Half-size graph: per-bound view materialization dominates setup.
    return {
        k: prepare_bounded("youtube", k, [SIZE], scale * 0.5)[SIZE]
        for k in BOUNDS
    }


@pytest.mark.parametrize("bound", BOUNDS, ids=str)
def test_fig8k_bmatch(benchmark, prepared, bound):
    p = prepared[bound]
    once(benchmark, bounded_match, p.query, p.graph)


@pytest.mark.parametrize("bound", BOUNDS, ids=str)
def test_fig8k_bmatchjoin_mnl(benchmark, prepared, bound):
    p = prepared[bound]
    once(benchmark, bounded_match_join, p.query, p.minimal, p.views)


@pytest.mark.parametrize("bound", BOUNDS, ids=str)
def test_fig8k_bmatchjoin_min(benchmark, prepared, bound):
    p = prepared[bound]
    once(benchmark, bounded_match_join, p.query, p.minimum, p.views)
