"""Fig. 8(e): MatchJoin_min across pattern sizes Q1..Q4 while varying
|G|.  Full series: python -m repro.bench.run_all --only fig8e."""

import pytest

from repro.core.matchjoin import match_join

from common import once, prepare_synthetic

BASE_NODES = [3000, 10000]
PATTERNS = [(4, 8), (5, 10), (6, 12), (7, 14)]


@pytest.fixture(scope="module")
def prepared(scale):
    return {
        (n, size): prepare_synthetic(max(500, int(n * scale)), size)
        for n in BASE_NODES
        for size in PATTERNS
    }


@pytest.mark.parametrize("nodes", BASE_NODES, ids=str)
@pytest.mark.parametrize("size", PATTERNS, ids=str)
def test_fig8e_matchjoin_min(benchmark, prepared, nodes, size):
    p = prepared[(nodes, size)]
    once(benchmark, match_join, p.query, p.minimum, p.views)
