"""Fig. 8(d): scalability with |G| on synthetic graphs (|E| = 2|V|,
pattern (4,6)).  Full series: python -m repro.bench.run_all --only fig8d."""

import pytest

from repro.core.matchjoin import match_join
from repro.simulation import match

from common import once, prepare_synthetic

BASE_NODES = [3000, 6000, 10000]


@pytest.fixture(scope="module")
def prepared(scale):
    return {
        n: prepare_synthetic(max(500, int(n * scale)), (4, 6))
        for n in BASE_NODES
    }


@pytest.mark.parametrize("nodes", BASE_NODES, ids=str)
def test_fig8d_match(benchmark, prepared, nodes):
    p = prepared[nodes]
    once(benchmark, match, p.query, p.graph)


@pytest.mark.parametrize("nodes", BASE_NODES, ids=str)
def test_fig8d_matchjoin_mnl(benchmark, prepared, nodes):
    p = prepared[nodes]
    once(benchmark, match_join, p.query, p.minimal, p.views)


@pytest.mark.parametrize("nodes", BASE_NODES, ids=str)
def test_fig8d_matchjoin_min(benchmark, prepared, nodes):
    p = prepared[nodes]
    once(benchmark, match_join, p.query, p.minimum, p.views)
