"""Fig. 8(d): scalability with |G| on synthetic graphs (|E| = 2|V|,
pattern (4,6)).  Full series: python -m repro.bench.run_all --only fig8d.

The ``out_of_core`` series extends the same axis past what the in-RAM
competitors run: edge streams 10x and 30x the largest in-memory point
are ingested shard-at-a-time into an on-disk snapshot, asserting that
builder peak RSS stays under a fixed ceiling regardless of |E|, and
that reattaching the saved snapshot via mmap beats rebuilding the graph
from its edge list by at least 5x.
"""

import time
import zlib

import pytest

from repro.core.matchjoin import match_join
from repro.graph.ingest import ingest_snapshot
from repro.graph.io import graph_from_edges
from repro.graph.snapshot import SnapshotStore
from repro.simulation import match

from common import once, prepare_synthetic

BASE_NODES = [3000, 6000, 10000]

OOC_FACTORS = [10, 30]
# The out-of-core claim: builder peak RSS growth is bounded by the
# largest single shard, not by |E|, so one fixed ceiling covers every
# factor on the axis.
OOC_RSS_CEILING = 256 << 20
# The >=5x reload-vs-rebuild assertion only engages above this edge
# count; below it (the REPRO_BENCH_SCALE=0 smoke) both sides are
# sub-millisecond noise.
OOC_SPEEDUP_FLOOR = 50_000


def _edge_stream(num_edges, num_nodes, seed=0x9E3779B9):
    """Deterministic (source, target) stream that never materializes
    the edge set -- the billion-edge stand-in."""
    state = seed or 1
    for _ in range(num_edges):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        yield (
            f"n{(state >> 33) % num_nodes}",
            f"n{(state >> 3) % num_nodes}",
        )


def _labeler(node):
    return (f"l{zlib.crc32(node.encode()) % 8}",)


@pytest.fixture(scope="module")
def ooc_edges(scale):
    # |E| = 2|V| at the largest in-RAM point; the factors scale from it.
    return 2 * max(500, int(max(BASE_NODES) * scale))


@pytest.mark.parametrize("factor", OOC_FACTORS, ids=lambda f: f"{f}x")
def test_fig8d_out_of_core_ingest(benchmark, tmp_path, ooc_edges, factor):
    num_edges = ooc_edges * factor
    num_nodes = max(250, num_edges // 2)

    def build():
        return ingest_snapshot(
            _edge_stream(num_edges, num_nodes),
            tmp_path / "snap",
            num_shards=8,
            labeler=_labeler,
            budget_bytes=4 << 20,
            overwrite=True,
        )

    report = once(benchmark, build)
    assert report.edges > 0
    assert report.on_disk_bytes > 0
    assert report.peak_rss_bytes < OOC_RSS_CEILING


def test_fig8d_out_of_core_reload_vs_rebuild(benchmark, tmp_path, ooc_edges):
    num_edges = ooc_edges * max(OOC_FACTORS)
    num_nodes = max(250, num_edges // 2)

    t0 = time.perf_counter()
    graph = graph_from_edges(
        _edge_stream(num_edges, num_nodes), labeler=_labeler
    )
    rebuild_seconds = time.perf_counter() - t0
    SnapshotStore.save(tmp_path / "snap", graph, overwrite=True)

    t0 = time.perf_counter()
    loaded = SnapshotStore.load(tmp_path / "snap")
    reload_seconds = time.perf_counter() - t0
    assert loaded.graph.num_nodes == graph.num_nodes
    assert loaded.graph.num_edges == graph.num_edges
    if num_edges >= OOC_SPEEDUP_FLOOR:
        assert reload_seconds * 5 <= rebuild_seconds, (
            f"mmap reload {reload_seconds:.3f}s not 5x faster than "
            f"rebuild {rebuild_seconds:.3f}s at {num_edges} edges"
        )
    once(benchmark, SnapshotStore.load, tmp_path / "snap")


@pytest.fixture(scope="module")
def prepared(scale):
    return {
        n: prepare_synthetic(max(500, int(n * scale)), (4, 6))
        for n in BASE_NODES
    }


@pytest.mark.parametrize("nodes", BASE_NODES, ids=str)
def test_fig8d_match(benchmark, prepared, nodes):
    p = prepared[nodes]
    once(benchmark, match, p.query, p.graph)


@pytest.mark.parametrize("nodes", BASE_NODES, ids=str)
def test_fig8d_matchjoin_mnl(benchmark, prepared, nodes):
    p = prepared[nodes]
    once(benchmark, match_join, p.query, p.minimal, p.views)


@pytest.mark.parametrize("nodes", BASE_NODES, ids=str)
def test_fig8d_matchjoin_min(benchmark, prepared, nodes):
    p = prepared[nodes]
    once(benchmark, match_join, p.query, p.minimum, p.views)
