"""Compact graph backend vs. the mutable dict backend.

Not a paper figure -- this benchmarks the PR that threads the
``CompactGraph`` snapshot (dense integer ids, array adjacency, label
index) through the matching stack.  Both backends answer the same
synthetic workload (the Fig. 8(d) graph family with the 22-view suite):

* **match** -- direct evaluation of each query on ``G``: dict backend
  vs. the frozen snapshot's integer-id engine;
* **MatchJoin** -- view-based evaluation from extensions materialized
  on the respective backend: node-key pair sets vs. snapshot-bound
  id-space payloads.

``test_compact_speedup_over_dict`` asserts the headline claim of the
refactor -- the compact backend answers the combined match + MatchJoin
workload at least 2x faster than the dict backend -- and that both
backends return identical results, so the fast path can never silently
drift.  Freezing/materialization happens outside every timed region
(the snapshot is built once and serves the whole batch, exactly how
``QueryEngine`` uses it).
"""

from time import perf_counter

import pytest

from repro.bench import workloads
from repro.core.minimal import minimal_views
from repro.core.matchjoin import match_join
from repro.simulation import match
from repro.views.storage import ViewSet

from common import once

#: Pattern sizes of the batch (a slice of the paper's Fig. 8(e) axis).
SIZES = [(4, 4), (4, 6), (4, 8), (6, 6), (6, 9), (6, 12), (8, 8), (8, 12)]


@pytest.fixture(scope="module")
def workload(scale):
    graph, views = workloads.synthetic(max(500, int(6000 * scale)))
    frozen = graph.freeze()
    compact_views = ViewSet(list(views))
    compact_views.materialize(frozen)
    queries = [
        workloads.pick_query(views, n, m, graph=graph, tag=f"compact{i}")
        for i, (n, m) in enumerate(SIZES)
    ]
    containments = [minimal_views(query, views) for query in queries]
    return graph, frozen, views, compact_views, queries, containments


def _run_match(graph, queries):
    return [match(query, graph) for query in queries]


def _run_matchjoin(views, queries, containments):
    return [
        match_join(query, containment, views)
        for query, containment in zip(queries, containments)
    ]


def test_dict_match(benchmark, workload):
    graph, _, _, _, queries, _ = workload
    once(benchmark, _run_match, graph, queries)


def test_compact_match(benchmark, workload):
    _, frozen, _, _, queries, _ = workload
    once(benchmark, _run_match, frozen, queries)


def test_dict_matchjoin(benchmark, workload):
    _, _, views, _, queries, containments = workload
    once(benchmark, _run_matchjoin, views, queries, containments)


def test_compact_matchjoin(benchmark, workload):
    _, _, _, compact_views, queries, containments = workload
    once(benchmark, _run_matchjoin, compact_views, queries, containments)


def _timed(fn, *args):
    started = perf_counter()
    result = fn(*args)
    return perf_counter() - started, result


def test_compact_speedup_over_dict(workload):
    """Acceptance check: compact match + MatchJoin >= 2x dict backend."""
    graph, frozen, views, compact_views, queries, containments = workload

    # min-of-3 per leg to de-noise millisecond-scale runs.
    dict_time = min(
        _timed(_run_match, graph, queries)[0]
        + _timed(_run_matchjoin, views, queries, containments)[0]
        for _ in range(3)
    )
    compact_time = min(
        _timed(_run_match, frozen, queries)[0]
        + _timed(_run_matchjoin, compact_views, queries, containments)[0]
        for _ in range(3)
    )
    assert dict_time >= 2 * compact_time, (
        f"dict {dict_time:.4f}s vs compact {compact_time:.4f}s "
        f"({dict_time / compact_time:.2f}x)"
    )

    # Same answers on both backends, and (Theorem 1) MatchJoin agrees
    # with direct evaluation.
    dict_match = _run_match(graph, queries)
    compact_match_ = _run_match(frozen, queries)
    dict_join = _run_matchjoin(views, queries, containments)
    compact_join = _run_matchjoin(compact_views, queries, containments)
    for a, b, c, d in zip(dict_match, compact_match_, dict_join, compact_join):
        assert a == b
        assert c == d
        assert c.edge_matches == a.edge_matches
