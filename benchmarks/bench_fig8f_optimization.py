"""Fig. 8(f): the SCC-rank bottom-up optimization vs the literal Fig. 2
fixpoint, on densification-law graphs (|E| = |V|^alpha).  Full series:
python -m repro.bench.run_all --only fig8f."""

import pytest

from repro.bench import workloads
from repro.core.matchjoin import match_join
from repro.core.minimum import minimum_views

from common import once

ALPHAS = [1.0, 1.1, 1.25]


@pytest.fixture(scope="module")
def prepared(scale):
    num_nodes = max(500, int(3000 * scale))
    out = {}
    for alpha in ALPHAS:
        graph, views = workloads.densification(num_nodes, alpha)
        query = workloads.pick_query(
            views, 4, 6, graph=graph, tag=f"dens{num_nodes}:{alpha}"
        )
        out[alpha] = (graph, views, query, minimum_views(query, views))
    return out


@pytest.mark.parametrize("alpha", ALPHAS, ids=str)
def test_fig8f_matchjoin_nopt(benchmark, prepared, alpha):
    graph, views, query, minimum = prepared[alpha]
    once(benchmark, match_join, query, minimum, views, optimized=False)


@pytest.mark.parametrize("alpha", ALPHAS, ids=str)
def test_fig8f_matchjoin_min(benchmark, prepared, alpha):
    graph, views, query, minimum = prepared[alpha]
    once(benchmark, match_join, query, minimum, views, optimized=True)


@pytest.mark.parametrize("alpha", ALPHAS, ids=str)
def test_fig8f_adaptive_planner(benchmark, prepared, alpha):
    """The same workload through the cost-based adaptive engine: the
    planner's pick should track the faster kernel as density grows."""
    from repro.engine import QueryEngine

    graph, views, query, minimum = prepared[alpha]
    engine = QueryEngine(
        views, graph=graph, planner="adaptive", answer_cache_size=0
    )
    engine.answer(query)  # warm: calibrate rates, cache containment
    once(benchmark, engine.answer, query)
