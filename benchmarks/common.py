"""Shared fixtures-in-spirit for the per-figure benchmark modules.

Each figure module benchmarks the same triple of competitors the paper
plots; the prepared-workload helpers here keep the per-module code down
to declarations.  All preparation (graph generation, materialization,
containment checking) happens *outside* the timed region, exactly as in
the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.bench import workloads
from repro.core.bounded.bminimal import bounded_minimal_views
from repro.core.bounded.bminimum import bounded_minimum_views
from repro.core.containment import Containment
from repro.core.minimal import minimal_views
from repro.core.minimum import minimum_views
from repro.graph.digraph import DataGraph
from repro.graph.pattern import Pattern
from repro.views.storage import ViewSet


@dataclass
class Prepared:
    """One x-axis point's ready-to-run workload."""

    graph: DataGraph
    views: ViewSet
    query: Pattern
    minimal: Containment
    minimum: Containment


def prepare_simulation(
    dataset: str, sizes, scale: float, require_dag: bool = False
) -> Dict[Tuple[int, int], Prepared]:
    factory = {
        "amazon": workloads.amazon,
        "citation": workloads.citation,
        "youtube": workloads.youtube,
    }[dataset]
    graph, views = factory(scale)
    prepared = {}
    for size in sizes:
        query = workloads.pick_query(
            views, size[0], size[1], graph=graph,
            require_dag=require_dag, tag=dataset,
        )
        prepared[size] = Prepared(
            graph, views, query,
            minimal_views(query, views), minimum_views(query, views),
        )
    return prepared


def prepare_bounded(
    dataset: str, bound: int, sizes, scale: float, require_dag: bool = False
) -> Dict[Tuple[int, int], Prepared]:
    graph, views = workloads.bounded_dataset(dataset, bound, scale)
    prepared = {}
    for size in sizes:
        query = workloads.pick_query(
            views, size[0], size[1], graph=graph,
            require_dag=require_dag, tag=f"{dataset}@{bound}",
        )
        prepared[size] = Prepared(
            graph, views, query,
            bounded_minimal_views(query, views),
            bounded_minimum_views(query, views),
        )
    return prepared


def prepare_synthetic(
    num_nodes: int, size: Tuple[int, int], bounded_k: int = 0
) -> Prepared:
    if bounded_k:
        graph, views = workloads.synthetic_bounded(num_nodes, bounded_k)
        query = workloads.pick_query(
            views, size[0], size[1], graph=graph, tag=f"synb{num_nodes}"
        )
        return Prepared(
            graph, views, query,
            bounded_minimal_views(query, views),
            bounded_minimum_views(query, views),
        )
    graph, views = workloads.synthetic(num_nodes)
    query = workloads.pick_query(
        views, size[0], size[1], graph=graph, tag=f"syn{num_nodes}"
    )
    return Prepared(
        graph, views, query,
        minimal_views(query, views), minimum_views(query, views),
    )


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once inside the benchmark timer.

    The workloads are seconds-scale deterministic computations, so one
    round gives stable, comparable numbers without hour-long suites.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
