"""Fig. 8(h): minimum vs minimal containment over an overlapping view
suite (R1 = time ratio, R2 = cardinality ratio).  Full series with the
ratio columns: python -m repro.bench.run_all --only fig8h."""

import pytest

from repro.bench import workloads
from repro.core.minimal import minimal_views
from repro.core.minimum import minimum_views
from repro.datasets import query_from_views

SIZES = [(6, 6), (8, 16), (10, 20)]


@pytest.fixture(scope="module")
def suite():
    views, composites = workloads.overlapping_views()
    queries = {
        size: query_from_views(composites, size[0], size[1], seed=1)
        for size in SIZES
    }
    return views, queries


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8h_minimal(benchmark, suite, size):
    views, queries = suite
    result = benchmark(minimal_views, queries[size], views)
    assert result.holds


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8h_minimum(benchmark, suite, size):
    views, queries = suite
    result = benchmark(minimum_views, queries[size], views)
    assert result.holds
    # R2: the greedy set must be no larger than the minimal one here.
    assert len(result.views_used()) <= len(
        minimal_views(queries[size], views).views_used()
    )
