"""Flat-buffer backend vs. the compact (dict-of-sets) snapshot backend.

Not a paper figure -- this benchmarks the PR that moves snapshots and
view extensions into flat shared-memory buffers (CSR id rows + node
tables in one segment per object) and rewrites the MatchJoin fixpoint
as whole-edge sweeps over those rows:

* **MatchJoin** -- the same synthetic workload as
  ``bench_compact_backend`` (Fig. 8(d) graph family, 22-view suite,
  Fig. 8(e) pattern-size batch), answered from flat extensions
  (:class:`~repro.views.flatpack.FlatExtension`) vs. the compact
  id-space payloads;
* **snapshot shipping** -- ``pickle.dumps`` + ``loads`` of the full
  serving payload (frozen snapshot + every materialized view), which is
  what a process-pool executor pays per worker per epoch.  Flat objects
  pickle to segment handles, so the payload ships in near-constant
  bytes regardless of graph size.

``test_flat_gates`` asserts the headline claims at full scale
(``REPRO_BENCH_SCALE >= 1``, the largest ``bench_compact_backend``
graph): the flat path answers the MatchJoin batch at least **2x**
faster than the compact backend, and ships the serving payload at
least **5x** faster.  At reduced scales (CI smoke runs) the speedup
gates relax to "no slower", but **equivalence against the dict backend
is asserted at every scale** -- the fast path can never silently drift.
Freezing/materialization happens outside every timed region, exactly
how ``QueryEngine`` uses the snapshot.
"""

import pickle
from time import perf_counter

import pytest

from repro.bench import workloads
from repro.core.minimal import minimal_views
from repro.core.matchjoin import match_join
from repro.graph import SharedCompactGraph, live_segment_names
from repro.views.flatpack import FlatExtension
from repro.views.storage import ViewSet

from common import once

#: Pattern sizes of the batch (same axis slice as bench_compact_backend).
SIZES = [(4, 4), (4, 6), (4, 8), (6, 6), (6, 9), (6, 12), (8, 8), (8, 12)]


@pytest.fixture(scope="module")
def workload(scale):
    graph, views = workloads.synthetic(max(500, int(6000 * scale)))
    frozen = graph.freeze()
    compact_views = ViewSet(list(views))
    compact_views.materialize(frozen)
    shared = graph.freeze(shared=True)
    assert isinstance(shared, SharedCompactGraph)
    flat_views = ViewSet(list(views))
    flat_views.materialize(shared)
    dict_views = ViewSet(list(views))
    dict_views.materialize(graph)
    queries = [
        workloads.pick_query(views, n, m, graph=graph, tag=f"compact{i}")
        for i, (n, m) in enumerate(SIZES)
    ]
    containments = [minimal_views(query, views) for query in queries]
    payload_compact = {
        "snapshot": frozen,
        "views": {d.name: compact_views.extension(d.name) for d in views},
    }
    payload_flat = {
        "snapshot": shared,
        "views": {d.name: flat_views.extension(d.name) for d in views},
    }
    return (
        compact_views,
        flat_views,
        dict_views,
        queries,
        containments,
        payload_compact,
        payload_flat,
    )


def _run_matchjoin(views, queries, containments):
    return [
        match_join(query, containment, views)
        for query, containment in zip(queries, containments)
    ]


def _ship(payload):
    """One process-pool ship: serialize + worker-side reconstruct."""
    return pickle.loads(pickle.dumps(payload))


def test_compact_matchjoin(benchmark, workload):
    compact_views, _, _, queries, containments, _, _ = workload
    once(benchmark, _run_matchjoin, compact_views, queries, containments)


def test_flat_matchjoin(benchmark, workload):
    _, flat_views, _, queries, containments, _, _ = workload
    once(benchmark, _run_matchjoin, flat_views, queries, containments)


def test_compact_ship(benchmark, workload):
    once(benchmark, _ship, workload[5])


def test_flat_ship(benchmark, workload):
    once(benchmark, _ship, workload[6])


def _timed(fn, *args):
    started = perf_counter()
    result = fn(*args)
    return perf_counter() - started, result


def _min_of(runs, fn, *args):
    return min(_timed(fn, *args)[0] for _ in range(runs))


def test_flat_views_really_flat(workload):
    """Every materialized extension on the shared snapshot is flat."""
    _, flat_views, _, _, _, _, payload_flat = workload
    for view in payload_flat["views"].values():
        assert isinstance(view.compact, FlatExtension)


def test_flat_gates(scale, workload):
    """Acceptance gates: >=2x MatchJoin and >=5x ship at full scale."""
    (
        compact_views,
        flat_views,
        dict_views,
        queries,
        containments,
        payload_compact,
        payload_flat,
    ) = workload

    # Equivalence at EVERY scale: flat == compact == dict, per query.
    dict_results = _run_matchjoin(dict_views, queries, containments)
    compact_results = _run_matchjoin(compact_views, queries, containments)
    flat_results = _run_matchjoin(flat_views, queries, containments)
    for expected, compact, flat in zip(
        dict_results, compact_results, flat_results
    ):
        assert flat == expected
        assert compact == expected

    # min-of-5 per leg to de-noise millisecond-scale runs (results above
    # already warmed the per-edge decode caches on both backends).
    compact_time = _min_of(5, _run_matchjoin, compact_views, queries, containments)
    flat_time = _min_of(5, _run_matchjoin, flat_views, queries, containments)
    compact_ship = _min_of(5, _ship, payload_compact)
    flat_ship = _min_of(5, _ship, payload_flat)

    if scale >= 1.0:
        assert compact_time >= 2 * flat_time, (
            f"MatchJoin: compact {compact_time:.4f}s vs flat {flat_time:.4f}s "
            f"({compact_time / flat_time:.2f}x)"
        )
        assert compact_ship >= 5 * flat_ship, (
            f"ship: compact {compact_ship:.4f}s vs flat {flat_ship:.4f}s "
            f"({compact_ship / flat_ship:.2f}x)"
        )
    else:
        # Reduced-scale smoke: the flat path must at least never lose.
        assert flat_time <= compact_time * 1.2, (
            f"flat regressed at scale {scale}: "
            f"{flat_time:.4f}s vs compact {compact_time:.4f}s"
        )
        assert flat_ship <= compact_ship, (
            f"flat ship regressed at scale {scale}: "
            f"{flat_ship:.4f}s vs compact {compact_ship:.4f}s"
        )

    # Payload size: segment handles, not buffers, go through pickle.
    assert len(pickle.dumps(payload_flat)) < len(pickle.dumps(payload_compact))


def test_no_segment_leaks(workload):
    """The module's shared objects account for every live segment."""
    # Everything the fixture created is still referenced here, so the
    # only assertion that makes sense mid-run is that attach/ship cycles
    # above did not strand extra segments: re-shipping and dropping the
    # result must leave the live-segment set unchanged.
    before = set(live_segment_names())
    clone = _ship(workload[6])
    del clone
    import gc

    gc.collect()
    assert set(live_segment_names()) == before
