"""Fig. 8(a): Match vs MatchJoin_mnl vs MatchJoin_min, varying |Qs|
(Amazon).  Full series: python -m repro.bench.run_all --only fig8a."""

import pytest

from repro.core.matchjoin import match_join
from repro.simulation import match

from common import once, prepare_simulation

SIZES = [(4, 6), (6, 9), (8, 12)]


@pytest.fixture(scope="module")
def prepared(scale):
    return prepare_simulation("amazon", SIZES, scale)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8a_match(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, match, p.query, p.graph)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8a_matchjoin_mnl(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, match_join, p.query, p.minimal, p.views)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8a_matchjoin_min(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, match_join, p.query, p.minimum, p.views)
