"""Compact bounded backend vs. the mutable dict backend.

Not a paper figure -- this benchmarks the PR that threads bounded
patterns (Section VI) through the compact snapshot stack.  Both
backends answer the same synthetic bounded workload (the Fig. 8(l)
graph family with the 22-view suite promoted to edge bound 2):

* **BMatch** -- direct bounded evaluation of each query on ``G``: the
  dict backend's per-node BFS loops vs. the frozen snapshot's id-space
  engine (label-index seeding, level-synchronous reverse/forward BFS
  over CSR rows);
* **BMatchJoin** -- view-based bounded evaluation from extensions
  materialized on the respective backend: node-key pair sets filtered
  through the node-key ``I(V)`` vs. snapshot-bound id-space payloads
  whose distance index rides the ``CompactExtension``.

``test_bounded_speedup_over_dict`` asserts the headline claim -- the
compact backend answers the combined BMatch + BMatchJoin workload at
least 2x faster than the dict backend -- and
``test_backend_equivalence`` that both backends return identical
results, so the fast path can never silently drift.  Equivalence is
checked unconditionally at every scale; the wall-clock assertion skips
at smoke scales (CI runs this module at scale 0 for correctness only,
following the ``bench_sharded`` convention -- shared runners are too
noisy for timing ratios).  Freezing/materialization happens outside
every timed region (the snapshot is built once and serves the whole
batch, exactly how ``QueryEngine`` uses it).
"""

from time import perf_counter

import pytest

from repro.bench import workloads
from repro.core.bounded.bminimal import bounded_minimal_views
from repro.core.bounded.bmatchjoin import bounded_match_join
from repro.simulation import bounded_match
from repro.views.storage import ViewSet

from common import once

#: Pattern sizes of the batch (a slice of the paper's Fig. 8 axes).
SIZES = [(4, 4), (4, 6), (4, 8), (6, 6), (6, 9), (8, 8)]

#: Edge bound of the promoted view suite (the paper's default k = 2).
BOUND = 2


@pytest.fixture(scope="module")
def workload(scale):
    graph, views = workloads.synthetic_bounded(
        max(1500, int(5000 * scale)), BOUND
    )
    frozen = graph.freeze()
    compact_views = ViewSet(list(views))
    compact_views.materialize(frozen)
    queries = [
        workloads.pick_query(views, n, m, graph=graph, tag=f"bounded{i}")
        for i, (n, m) in enumerate(SIZES)
    ]
    containments = [bounded_minimal_views(query, views) for query in queries]
    return graph, frozen, views, compact_views, queries, containments


def _run_bmatch(graph, queries):
    return [bounded_match(query, graph) for query in queries]


def _run_bmatchjoin(views, queries, containments):
    return [
        bounded_match_join(query, containment, views)
        for query, containment in zip(queries, containments)
    ]


def test_dict_bmatch(benchmark, workload):
    graph, _, _, _, queries, _ = workload
    once(benchmark, _run_bmatch, graph, queries)


def test_compact_bmatch(benchmark, workload):
    _, frozen, _, _, queries, _ = workload
    once(benchmark, _run_bmatch, frozen, queries)


def test_dict_bmatchjoin(benchmark, workload):
    _, _, views, _, queries, containments = workload
    once(benchmark, _run_bmatchjoin, views, queries, containments)


def test_compact_bmatchjoin(benchmark, workload):
    _, _, _, compact_views, queries, containments = workload
    once(benchmark, _run_bmatchjoin, compact_views, queries, containments)


def _timed(fn, *args):
    started = perf_counter()
    result = fn(*args)
    return perf_counter() - started, result


def test_backend_equivalence(workload):
    """Same answers on both backends, and (Theorem 9) BMatchJoin agrees
    with direct bounded evaluation -- checked at every scale."""
    graph, frozen, views, compact_views, queries, containments = workload
    dict_match = _run_bmatch(graph, queries)
    compact_match = _run_bmatch(frozen, queries)
    dict_join = _run_bmatchjoin(views, queries, containments)
    compact_join = _run_bmatchjoin(compact_views, queries, containments)
    for a, b, c, d in zip(dict_match, compact_match, dict_join, compact_join):
        assert a == b
        assert c == d
        assert c.edge_matches == a.edge_matches


def test_bounded_speedup_over_dict(workload, scale):
    """Acceptance check: compact BMatch + BMatchJoin >= 2x dict backend."""
    if scale < 0.25:
        pytest.skip("smoke scale: timing ratios are noise-bound on CI")
    graph, frozen, views, compact_views, queries, containments = workload

    # min-of-3 per leg to de-noise millisecond-scale runs.
    dict_time = min(
        _timed(_run_bmatch, graph, queries)[0]
        + _timed(_run_bmatchjoin, views, queries, containments)[0]
        for _ in range(3)
    )
    compact_time = min(
        _timed(_run_bmatch, frozen, queries)[0]
        + _timed(_run_bmatchjoin, compact_views, queries, containments)[0]
        for _ in range(3)
    )
    assert dict_time >= 2 * compact_time, (
        f"dict {dict_time:.4f}s vs compact {compact_time:.4f}s "
        f"({dict_time / compact_time:.2f}x)"
    )
