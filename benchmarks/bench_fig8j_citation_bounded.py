"""Fig. 8(j): BMatch vs BMatchJoin_mnl vs BMatchJoin_min, varying |Qb|
(Citation, fe=3).  Full series: python -m repro.bench.run_all --only fig8j."""

import pytest

from repro.core.bounded.bmatchjoin import bounded_match_join
from repro.simulation import bounded_match

from common import once, prepare_bounded

SIZES = [(4, 8), (6, 12), (8, 16)]


@pytest.fixture(scope="module")
def prepared(scale):
    return prepare_bounded("citation", 3, SIZES, scale, require_dag=True)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8j_bmatch(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, bounded_match, p.query, p.graph)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8j_bmatchjoin_mnl(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, bounded_match_join, p.query, p.minimal, p.views)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8j_bmatchjoin_min(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, bounded_match_join, p.query, p.minimum, p.views)
