"""Ablation: how much of MatchJoin's win survives partial view coverage?

Sweeps the fraction of query edges that the view cache covers and
compares (a) direct Match, (b) the exact *hybrid* evaluator
(views for covered edges, graph scans for the rest; see
``repro.core.rewriting.hybrid_answer``), and -- at full coverage --
(c) pure MatchJoin.  The design claim under test: evaluation cost
degrades gracefully from MatchJoin's to Match's as coverage shrinks,
so a partially useful cache is still useful.
"""

import pytest

from repro.bench import workloads
from repro.core.containment import contains
from repro.core.matchjoin import match_join
from repro.core.rewriting import hybrid_answer
from repro.simulation import match
from repro.views import ViewDefinition, ViewSet

from common import once

COVERAGES = [0.0, 0.5, 1.0]


@pytest.fixture(scope="module")
def prepared(scale):
    graph, full_views = workloads.synthetic(max(500, int(8000 * scale)))
    query = workloads.pick_query(full_views, 5, 8, graph=graph, tag="ablation")
    edges = query.edges()
    out = {}
    for coverage in COVERAGES:
        keep = edges[: int(round(len(edges) * coverage))]
        views = ViewSet(
            ViewDefinition(f"c{i}", query.subpattern([edge]))
            for i, edge in enumerate(keep)
        )
        views.materialize(graph)
        out[coverage] = (graph, views, query)
    return out


@pytest.mark.parametrize("coverage", COVERAGES, ids=lambda c: f"cov{c}")
def test_ablation_match_baseline(benchmark, prepared, coverage):
    graph, views, query = prepared[coverage]
    result = once(benchmark, match, query, graph)
    assert result is not None


@pytest.mark.parametrize("coverage", COVERAGES, ids=lambda c: f"cov{c}")
def test_ablation_hybrid(benchmark, prepared, coverage):
    graph, views, query = prepared[coverage]
    result = once(benchmark, hybrid_answer, query, views, graph)
    assert result.edge_matches == match(query, graph).edge_matches


def test_ablation_matchjoin_full_coverage(benchmark, prepared):
    graph, views, query = prepared[1.0]
    containment = contains(query, views)
    assert containment.holds
    result = once(benchmark, match_join, query, containment, views)
    assert result.edge_matches == match(query, graph).edge_matches
