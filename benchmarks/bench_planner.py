"""Planner/advisor gates: adaptive planning must pay for itself.

Part 1 -- a mixed workload (hot fully-contained queries, a partially
covered query, a fully uncovered query) runs under every fixed
strategy (direct-only, matchjoin over ``all``/``minimal``/``minimum``
selections, forced hybrid) and under the cost-based adaptive planner.
The gate: adaptive is at least as fast as **every** fixed strategy and
strictly beats the worst one by >1.1x -- i.e. picking per-query beats
any single policy, and the cost model's picks are right.

Part 2 -- a cold catalog plus a hot workload: the
:class:`~repro.engine.advisor.WorkloadAdvisor` under the paper's 15%
|G| byte budget must beat materialize-nothing by >=1.5x on the hot
queries, and its measured extension bytes must never exceed the
budget (asserted at every tick).

Correctness (identical results across all planners) is asserted at
every scale including the CI smoke at scale 0; the speedup ratios are
asserted only at ``REPRO_BENCH_SCALE >= 0.2`` where the timings are
meaningful.  Measured numbers merge into ``BENCH_summary.json`` under
a ``"planner"`` section.
"""

import json
import os
import time
from pathlib import Path
from time import perf_counter

import pytest

from repro.bench import workloads
from repro.core.containment import contains
from repro.engine import QueryEngine
from repro.graph.pattern import Pattern
from repro.views.storage import ViewSet

from common import once

SUMMARY_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_SUMMARY_OUT",
        Path(__file__).parent / "BENCH_summary.json",
    )
)

#: Speedup ratios are only asserted at meaningful scales; below this
#: the workloads are sub-millisecond and dominated by noise.
RATIO_SCALE = 0.2
ROUNDS = 6

FIXED_STRATEGIES = {
    "direct-only": dict(planner="direct"),
    "matchjoin-all": dict(planner="fixed", selection="all"),
    "minimal": dict(planner="fixed", selection="minimal"),
    "minimum": dict(planner="fixed", selection="minimum"),
    "hybrid": dict(planner="hybrid"),
}


def _pair_pattern(la, lb):
    q = Pattern()
    q.add_node("u", la)
    q.add_node("v", lb)
    q.add_edge("u", "v")
    return q


def _uncovered_pair(graph, views, limit=4000):
    """The (label, label) pair present on a real graph edge that no
    view covers, with the smallest combined label buckets -- every
    planner answers it directly, so a selective pair keeps this shared
    baseline from drowning out the queries where the planners differ."""
    stats_fn = getattr(graph, "label_index_stats", None)
    stats = stats_fn() if stats_fn is not None else {}
    seen = set()
    best = None
    for u in sorted(graph.nodes(), key=str):
        for v in sorted(graph.successors(u), key=str):
            for la in sorted(graph.labels(u)):
                for lb in sorted(graph.labels(v)):
                    if (la, lb) in seen:
                        continue
                    seen.add((la, lb))
                    if not contains(_pair_pattern(la, lb), views).holds:
                        key = (stats.get(la, 0) + stats.get(lb, 0), la, lb)
                        if best is None or key < best:
                            best = key
            limit -= 1
            if limit <= 0:
                break
    return (best[1], best[2]) if best is not None else None


@pytest.fixture(scope="module")
def summary(scale):
    """Accumulates planner numbers; merged into BENCH_summary.json
    (never overwriting other modules' sections) on module teardown."""
    data = {"scale": scale}
    yield data
    existing = {}
    if SUMMARY_PATH.exists():
        try:
            existing = json.loads(SUMMARY_PATH.read_text())
        except ValueError:
            existing = {}
    existing["planner"] = data
    existing["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    SUMMARY_PATH.write_text(
        json.dumps(existing, indent=2, sort_keys=True, default=str) + "\n"
    )


def _small_view_patterns(views, count=2):
    """The ``count`` smallest-extension view patterns (skipping empty
    extensions).  Answering a view's own pattern from its extension is
    the paper's best case for MatchJoin -- a decisive win over direct
    evaluation -- which is exactly what a hot query should reward."""
    sizes = {d.name: views.extension(d.name).size for d in views.definitions()}
    names = sorted(
        (n for n in sizes if sizes[n] > 0), key=lambda n: (sizes[n], n)
    )[:count]
    if not names:
        # Degenerate graphs (the scale-0 CI smoke) leave every
        # extension empty; any view pattern still walks the whole
        # planning/evaluation path, just over empty match sets.
        names = sorted(sizes)[:count]
    patterns = {d.name: d.pattern for d in views.definitions()}
    return [patterns[name].copy() for name in names]


def _overlapped_partial(graph, views):
    """A partially covered query on which only *pruned* hybrid
    rewriting is fast.

    Base: the small view pattern whose maximal coverage drags in the
    biggest overlapping view.  Extension: one uncovered edge from the
    pattern's first node to a fresh node with the rarest label.  The
    fixed MatchJoin planners cannot answer it from views at all (they
    fall back to direct evaluation over the base pattern's big label
    buckets); the forced-hybrid baseline answers it but pays the full
    overlapping-view merge; the adaptive planner prunes λ to the
    cheapest witness per edge and fans the uncovered edge out from the
    covered anchors only."""
    sizes = {d.name: views.extension(d.name).size for d in views.definitions()}
    best = None
    for d in views.definitions():
        if not 0 < sizes[d.name] <= 1000:
            continue
        cov = contains(d.pattern.copy(), views)
        overlap = max(
            (sizes[v] for v in cov.views_used() if v != d.name), default=0
        )
        if best is None or (overlap, d.name) > best[:2]:
            best = (overlap, d.name, d.pattern)
    if best is None:
        return None
    stats_fn = getattr(graph, "label_index_stats", None)
    stats = stats_fn() if stats_fn is not None else {}
    if not stats:
        return None
    rare = min(stats, key=lambda lab: (stats[lab], str(lab)))
    partial = best[2].copy()
    anchor = sorted(partial.nodes(), key=str)[0]
    partial.add_node("pnew", rare)
    partial.add_edge(anchor, "pnew")
    cov = contains(partial, views)
    if cov.holds or not cov.mapping:
        return None
    return partial


@pytest.fixture(scope="module")
def mixed(scale):
    """The Part-1 workload: graph, fully materialized views, and a
    query mix that punishes every single-policy planner somewhere.

    * ``hot0``/``hot1`` -- small-extension view patterns: MatchJoin
      over the minimal subset beats direct by orders of magnitude
      (punishes direct-only) and reads less than the ``all`` selection
      (chips at matchjoin-all and forced hybrid).
    * ``partial`` -- partially covered with heavy view overlap: fixed
      MatchJoin falls back to direct, forced hybrid merges the big
      overlapping view, adaptive wins on the pruned λ (Section VIII).
    * ``uncovered`` -- nothing covers it (everyone pays direct; kept
      rare-labelled so the shared cost stays small).
    """
    graph, views = workloads.amazon(scale)
    views.materialize(graph)
    hot = _small_view_patterns(views)
    queries = {f"hot{i}": q for i, q in enumerate(hot)}
    partial = _overlapped_partial(graph, views)
    if partial is not None:
        queries["partial"] = partial
    pair = _uncovered_pair(graph, views)
    if pair is not None:
        queries["uncovered"] = _pair_pattern(*pair)
    # Hot queries dominate the mix, as in a production workload.
    workload = (
        [queries["hot0"]] * 3
        + ([queries["hot1"]] * 3 if "hot1" in queries else [])
        + ([queries["partial"]] * 2 if "partial" in queries else [])
        + ([queries["uncovered"]] if "uncovered" in queries else [])
    )
    return graph, views, queries, workload


def _engine(views, graph, **kwargs):
    kwargs.setdefault("answer_cache_size", 0)
    return QueryEngine(views, graph=graph, **kwargs)


def _measure_all(engines, workload):
    """Workload cost per engine, robust to a noisy host.

    Warm every engine first (calibrates cost models, fills containment
    caches, settles plans -- the adaptive planner's one-shot strategy
    exploration happens here, outside the timed region).  Then take
    each engine's best-of-ROUNDS time *per query*, interleaved
    round-robin across engines so environmental drift hits everyone
    equally, and compose the workload total from the per-query minima
    weighted by multiplicity.  Per-query minima converge on the true
    cost under bursty CPU contention, where whole-pass timings spread
    by tens of percent between engines doing identical work."""
    for engine in engines.values():
        for query in workload:
            engine.answer(query)
    unique = {id(query): query for query in workload}
    multiplicity = {}
    for query in workload:
        multiplicity[id(query)] = multiplicity.get(id(query), 0) + 1
    best = {name: {} for name in engines}
    names = list(engines)
    for round_no in range(ROUNDS):
        # Rotate engine order each round: a fixed order would pin the
        # last engine to the latest (often slowest) phase of a run.
        shift = round_no % len(names)
        for name in names[shift:] + names[:shift]:
            engine = engines[name]
            for qid, query in unique.items():
                started = perf_counter()
                engine.answer(query)
                elapsed = perf_counter() - started
                current = best[name].get(qid)
                if current is None or elapsed < current:
                    best[name][qid] = elapsed
    return {
        name: sum(
            times[qid] * multiplicity[qid] for qid in unique
        )
        for name, times in best.items()
    }


def test_planner_adaptive_beats_fixed(benchmark, mixed, summary, scale):
    graph, views, queries, workload = mixed
    engines = {
        name: _engine(views, graph, **kwargs)
        for name, kwargs in FIXED_STRATEGIES.items()
    }
    engines["adaptive"] = _engine(views, graph, planner="adaptive")

    # Correctness at every scale: all planners, identical answers.
    reference = {
        key: engines["direct-only"].answer(query)
        for key, query in queries.items()
    }
    for name, engine in engines.items():
        for key, query in queries.items():
            result = engine.answer(query)
            for edge in query.edges():
                assert result.matches_of(edge) == reference[key].matches_of(
                    edge
                ), f"{name} diverged from direct on {key} at {edge}"

    times = _measure_all(engines, workload)
    once(benchmark, lambda: [engines["adaptive"].answer(q) for q in workload])

    adaptive = times.pop("adaptive")
    summary["mixed_seconds"] = dict(times, adaptive=adaptive)
    summary["speedups"] = {
        name: elapsed / adaptive for name, elapsed in times.items()
    }
    worst = max(times.values())
    summary["speedup_vs_worst"] = worst / adaptive
    if scale >= RATIO_SCALE:
        for name, elapsed in times.items():
            assert elapsed / adaptive >= 1.0, (
                f"adaptive slower than fixed {name}: "
                f"{adaptive:.4f}s vs {elapsed:.4f}s"
            )
        assert worst / adaptive > 1.1, (
            f"adaptive only {worst / adaptive:.2f}x the worst fixed "
            "strategy (need > 1.1x)"
        )


def test_planner_explain_matches_record(mixed, summary):
    """The explain() text and the plan-choice record agree on the
    winner, with per-candidate costs present (adaptive planner)."""
    graph, views, queries, _ = mixed
    engine = _engine(views, graph, planner="adaptive")
    for key, query in queries.items():
        plan = engine.plan(query)
        text = plan.explain()
        assert "planner  : adaptive" in text
        assert plan.candidates, f"no candidates priced for {key}"
        winner = plan.winning_candidate()
        assert winner is not None and winner.strategy == plan.strategy
        engine.execute(plan)
        record = engine.plan_log(1)[0]
        assert record.strategy == plan.strategy
        assert record.candidates == plan.candidates
        assert record.cost_estimate == plan.cost_estimate


def test_advisor_budget_beats_materialize_nothing(
    benchmark, mixed, summary, scale
):
    graph, full_views, _, _ = mixed
    # Hot queries answerable from small extensions: once the advisor
    # materializes those views, MatchJoin wins decisively.
    hot = _small_view_patterns(full_views)

    def cold_views():
        return ViewSet(full_views.definitions())

    # Materialize-nothing baseline: same adaptive planner, no advisor.
    # With every view cold, matchjoin candidates carry the
    # materialization penalty, so this engine pays direct every time.
    nothing = _engine(cold_views(), graph, planner="adaptive")
    # Advised engine: 15% |G| byte budget, ticking as answers flow.
    advised = _engine(
        cold_views(),
        graph,
        planner="adaptive",
        auto_materialize=0.15,
        advisor_interval=4,
    )
    advisor = advised.advisor
    budget = advisor.budget_bytes()
    assert budget <= 0.15 * advisor.graph_bytes() + 1

    # Prime: two passes feed the plan log; every tick must respect the
    # byte budget (the accounting assertion of the gate).
    for _ in range(2):
        for query in hot:
            nothing.answer(query)
            advised.answer(query)
            assert advisor.used_bytes() <= budget, (
                f"advisor exceeded budget: {advisor.used_bytes()} > {budget}"
            )
    for _ in range(3):
        advisor.tick()
        assert advisor.used_bytes() <= budget

    # Correctness at every scale: advised answers == baseline answers.
    for query in hot:
        a = advised.answer(query)
        b = nothing.answer(query)
        for edge in query.edges():
            assert a.matches_of(edge) == b.matches_of(edge)

    times = _measure_all(
        {"nothing": nothing, "advised": advised}, hot * 2
    )
    t_nothing, t_advised = times["nothing"], times["advised"]
    once(benchmark, lambda: [advised.answer(q) for q in hot])
    assert advisor.used_bytes() <= budget

    summary["advisor"] = {
        "budget_bytes": budget,
        "used_bytes": advisor.used_bytes(),
        "graph_bytes": advisor.graph_bytes(),
        "ticks": advisor.ticks,
        "hot_seconds_materialize_nothing": t_nothing,
        "hot_seconds_advised": t_advised,
        "speedup": t_nothing / t_advised if t_advised else None,
    }
    if scale >= RATIO_SCALE:
        assert advisor.used_bytes() > 0, (
            "advisor materialized nothing under the budget"
        )
        assert t_nothing / t_advised >= 1.5, (
            f"advised only {t_nothing / t_advised:.2f}x materialize-nothing "
            "(need >= 1.5x)"
        )
