"""The serving layer under a closed-loop mixed read/update workload.

Not a paper figure -- this benchmarks the ``repro serve`` PR: several
closed-loop readers (each issues a query, awaits the answer, issues the
next) run against a :class:`~repro.serve.QueryServer` while an update
task streams maintenance :class:`~repro.views.Delta` batches through
epoch swaps.  Reported per run:

* **p50 / p99 latency** over every served answer, and **throughput**
  (answers per second of wall-clock workload time);
* epoch accounting (one swap per delta, every superseded epoch drains).

``test_serve_mixed_workload`` asserts

* **correctness, zero tolerance**: every answer equals direct
  evaluation on the per-epoch reference graph for the epoch it reports
  it was served from (references are replayed copies, independent of
  every serving/engine code path);
* **epoch overlap** (scale >= 0.25 only): answers were served from more
  than one epoch -- readers really did run *through* maintenance, not
  around it -- and no reader ever blocked for the whole update phase;
* **liveness**: no request was shed (admission is sized for the load)
  and the server drains cleanly.
"""

import asyncio
import random
from time import perf_counter

from repro.graph.digraph import DataGraph
from repro.graph.pattern import Pattern
from repro.serve import QueryServer
from repro.simulation import match
from repro.views import Delta, ViewDefinition, ViewSet
from repro.views.maintenance import IncrementalViewSet

from common import once

LABELS = ("A", "B", "C", "D")


def _pattern(labels, edges):
    pattern = Pattern()
    for name, label in labels.items():
        pattern.add_node(name, label)
    for source, target in edges:
        pattern.add_edge(source, target)
    return pattern


def _views():
    return [
        ViewDefinition("AB", _pattern({"a": "A", "b": "B"}, [("a", "b")])),
        ViewDefinition("BC", _pattern({"b": "B", "c": "C"}, [("b", "c")])),
        ViewDefinition(
            "ABC",
            _pattern(
                {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
            ),
        ),
    ]


def _queries():
    return [
        _pattern({"x": "A", "y": "B"}, [("x", "y")]),
        _pattern({"x": "B", "y": "C"}, [("x", "y")]),
        _pattern({"x": "A", "y": "B", "z": "C"}, [("x", "y"), ("y", "z")]),
        _pattern({"x": "C", "y": "D"}, [("x", "y")]),
    ]


def _workload(scale):
    """Graph, deltas and per-epoch reference graphs, built up front so
    the timed region is pure serving."""
    rng = random.Random(73)
    num_nodes = max(400, int(2500 * scale))
    num_edges = num_nodes * 3
    per_reader = max(25, int(120 * scale))
    num_deltas = max(4, int(16 * scale))
    graph = DataGraph()
    for node in range(num_nodes):
        graph.add_node(node, labels=LABELS[rng.randrange(len(LABELS))])
    added = 0
    while added < num_edges:
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b)
            added += 1
    deltas = []
    mirror = graph.copy()
    references = [graph.copy()]
    for _ in range(num_deltas):
        delta = Delta()
        for _ in range(12):
            a, b = rng.sample(range(num_nodes), 2)
            if mirror.has_edge(a, b):
                delta.delete(a, b)
            else:
                delta.insert(a, b)
        mirror.apply_delta(delta)
        deltas.append(delta)
        references.append(mirror.copy())
    return graph, deltas, references, per_reader


def test_serve_mixed_workload(benchmark, scale):
    graph, deltas, references, per_reader = _workload(scale)
    definitions = _views()
    queries = _queries()
    tracker = IncrementalViewSet(definitions, graph)
    from repro.engine import QueryEngine

    engine = QueryEngine(ViewSet(definitions), graph=graph)
    engine.attach_maintenance(tracker)
    server = QueryServer(engine, max_inflight=4, max_queue=4096)

    num_readers = 4
    observations = []  # (query_index, epoch, latency, edge_matches)
    timings = {}

    async def drive():
        async with server:
            async def reader(worker):
                rng = random.Random(9000 + worker)
                for _ in range(per_reader):
                    index = rng.randrange(len(queries))
                    started = perf_counter()
                    answer = await server.query(queries[index])
                    observations.append(
                        (
                            index,
                            answer.epoch,
                            perf_counter() - started,
                            answer.result.edge_matches,
                        )
                    )

            async def updater():
                for delta in deltas:
                    await server.update(delta)
                    await asyncio.sleep(0)
                timings["updates_done"] = perf_counter()

            started = perf_counter()
            await asyncio.gather(
                *(reader(worker) for worker in range(num_readers)), updater()
            )
            timings["elapsed"] = perf_counter() - started
            timings["stats"] = server.stats()

    once(benchmark, lambda: asyncio.run(drive()))

    stats = timings["stats"]
    assert stats["requests"]["shed"] == 0
    assert stats["requests"]["completed"] == num_readers * per_reader
    # One swap per delta; every superseded epoch fully drained.
    assert stats["epoch"]["current"] == len(deltas)
    assert stats["epoch"]["swaps"] == len(deltas)
    assert stats["epoch"]["draining"] == 0
    assert stats["epoch"]["drained"] == len(deltas)

    # Correctness, zero tolerance: every answer equals direct
    # evaluation on the reference graph of the epoch that served it
    # (memoized per (query, epoch): answers are deterministic there).
    expected_cache = {}
    violations = 0
    for index, epoch, _, edge_matches in observations:
        key = (index, epoch)
        if key not in expected_cache:
            expected_cache[key] = match(
                queries[index], references[epoch]
            ).edge_matches
        if edge_matches != expected_cache[key]:
            violations += 1
    assert violations == 0, f"{violations} answers diverged from their epoch"

    latencies = sorted(latency for _, _, latency, _ in observations)
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[min(len(latencies) - 1, (len(latencies) * 99) // 100)]
    throughput = len(latencies) / timings["elapsed"]
    benchmark.extra_info.update(
        {
            "answers": len(latencies),
            "p50_ms": round(p50 * 1e3, 3),
            "p99_ms": round(p99 * 1e3, 3),
            "throughput_qps": round(throughput, 1),
            "epochs": stats["epoch"]["current"],
            "coalesced": stats["requests"]["coalesced"],
            "cache_hits": stats["requests"]["cache_hits"],
            "evaluated": stats["requests"]["evaluated"],
        }
    )

    if scale >= 0.25:
        # Readers ran *through* maintenance: answers span multiple
        # epochs (a stop-the-world design would serve everything from
        # epoch 0 or everything from the final epoch).
        served_epochs = {epoch for _, epoch, _, _ in observations}
        assert len(served_epochs) > 1, served_epochs
