"""Fig. 8(b): Match vs MatchJoin_mnl vs MatchJoin_min, varying |Qs|
(Citation).  Full series: python -m repro.bench.run_all --only fig8b."""

import pytest

from repro.core.matchjoin import match_join
from repro.simulation import match

from common import once, prepare_simulation

SIZES = [(4, 8), (6, 12), (8, 16)]


@pytest.fixture(scope="module")
def prepared(scale):
    return prepare_simulation("citation", SIZES, scale, require_dag=True)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8b_match(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, match, p.query, p.graph)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8b_matchjoin_mnl(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, match_join, p.query, p.minimal, p.views)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8b_matchjoin_min(benchmark, prepared, size):
    p = prepared[size]
    once(benchmark, match_join, p.query, p.minimum, p.views)
