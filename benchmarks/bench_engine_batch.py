"""QueryEngine batch throughput: cold sequential vs warm cache vs parallel.

Not a paper figure -- this benchmarks the engine layer that composes the
paper's algorithms into a serving path.  Three competitors over the same
synthetic workload (the Fig. 8(d) graph family with the 22-view suite):

* **cold serial** -- fresh engine, every query plans (containment +
  selection) and evaluates;
* **warm cache** -- same engine re-answering the batch: every query is
  an answer-cache hit;
* **process pool** -- fresh engine fanning the batch across workers.

``test_warm_cache_speedup_over_cold`` asserts the headline claim (warm
throughput >= 2x cold sequential) so regressions fail loudly instead of
just shifting numbers.
"""

from time import perf_counter

import pytest

from repro.bench import workloads
from repro.engine import QueryEngine

from common import once

#: Pattern sizes of the batch (a slice of the paper's Fig. 8(e) axis,
#: repeated to give the caches something to deduplicate).
SIZES = [(4, 4), (4, 6), (4, 8), (6, 6), (6, 9), (4, 4), (4, 6), (6, 6)]


@pytest.fixture(scope="module")
def workload(scale):
    graph, views = workloads.synthetic(max(500, int(6000 * scale)))
    queries = [
        workloads.pick_query(views, n, m, graph=graph, tag=f"engine{i}")
        for i, (n, m) in enumerate(SIZES)
    ]
    return graph, views, queries


def _cold_engine(graph, views):
    return QueryEngine(views, graph=graph, selection="minimal")


def _run_cold(graph, views, queries):
    engine = _cold_engine(graph, views)
    return engine.answer_batch(queries, executor="serial")


def test_engine_cold_sequential(benchmark, workload):
    graph, views, queries = workload
    once(benchmark, _run_cold, graph, views, queries)


def test_engine_warm_cache(benchmark, workload):
    graph, views, queries = workload
    engine = _cold_engine(graph, views)
    engine.answer_batch(queries)  # warm both caches outside the timer
    once(benchmark, engine.answer_batch, queries)


def test_engine_parallel_process(benchmark, workload):
    graph, views, queries = workload

    def run():
        engine = _cold_engine(graph, views)
        return engine.answer_batch(queries, executor="process", workers=4)

    once(benchmark, run)


def test_warm_cache_speedup_over_cold(workload):
    """Acceptance check: warm-cache batch throughput >= 2x cold serial."""
    graph, views, queries = workload
    started = perf_counter()
    cold_results = _run_cold(graph, views, queries)
    cold = perf_counter() - started

    engine = _cold_engine(graph, views)
    engine.answer_batch(queries)
    warm = min(
        _timed(engine, queries) for _ in range(3)
    )  # min-of-3 to de-noise the microsecond-scale warm path
    assert all(r.stats.cache_hit for r in engine.answer_batch(queries))
    assert cold >= 2 * warm, f"cold {cold:.4f}s vs warm {warm:.4f}s"
    # Same answers either way.
    warm_results = engine.answer_batch(queries)
    for a, b in zip(cold_results, warm_results):
        assert a.edge_matches == b.edge_matches


def _timed(engine, queries):
    started = perf_counter()
    engine.answer_batch(queries)
    return perf_counter() - started
