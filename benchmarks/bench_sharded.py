"""Sharded parallel materialization + matching vs. the single snapshot.

Not a paper figure -- this benchmarks the sharded backend PR: a
community graph (dense blocks, sparse block-crossing edges -- the
workload family where a locality-aware partitioner has something to
find) is split into :data:`NUM_SHARDS` shards by BFS region growing
(:class:`~repro.shard.sharded.ShardedGraph`), the 22-view synthetic
suite is materialized **shard-parallel** on a process pool
(partial-evaluation fixpoints per shard, merged composite-id
extensions), and the query batch is answered by MatchJoin over the
merged extensions -- which carry the composite snapshot token, so the
id-space fast path engages exactly as on a single snapshot.

``test_sharded_parallel_speedup`` asserts the headline claim: with a
warm worker pool (a serving deployment keeps its pool up, exactly as
``QueryEngine`` keeps its snapshot), the 4-shard process-pool pipeline
beats the serial single-snapshot pipeline by >= 1.5x at the default
benchmark scale -- and both produce identical extensions and answers,
checked unconditionally at every scale.  The timing assertion needs
real parallel hardware and enough work to amortize coordination, so it
skips on machines with fewer than 4 usable cores and at smoke scales
(CI runs this module at scale 0 for correctness only).
"""

import os
import random
from time import perf_counter

import pytest

from repro.bench import workloads
from repro.core.minimal import minimal_views
from repro.core.matchjoin import match_join
from repro.datasets import community_graph
from repro.datasets.patterns import chain_view
from repro.shard import ShardRunner, ShardedGraph, make_partition, parallel_materialize
from repro.views.storage import ViewSet

from common import once

NUM_SHARDS = 4

#: Query batch sizes: stitched from the chain views, so refinement
#: cascades run deep (the work profile sharding is for).
SIZES = [(6, 6), (6, 8), (8, 8), (8, 10), (10, 10), (10, 12), (12, 12), (12, 14)]


def _chain_views(labels, count=22, seed=11) -> ViewSet:
    """Chain views of length 3-5: deep witness cascades, compact
    extensions -- the workload profile where per-shard evaluation
    dominates coordination."""
    rng = random.Random(seed)
    views = ViewSet()
    for index in range(count):
        length = rng.choice((3, 4, 4, 5, 5))
        picks = [labels[rng.randrange(len(labels))] for _ in range(length)]
        views.add(chain_view(f"CV{index}", picks))
    return views


@pytest.fixture(scope="module")
def workload(scale):
    labels = tuple(f"l{i}" for i in range(10))
    graph = community_graph(
        NUM_SHARDS,
        max(400, int(8600 * scale)),
        intra_degree=12,
        cross_fraction=0.005,
        labels=labels,
        seed=7,
    )
    views = _chain_views(labels)
    definitions = list(views)
    frozen = graph.freeze()
    sharded = ShardedGraph(graph, make_partition(graph, NUM_SHARDS, "bfs"))
    queries = [
        workloads.pick_query(views, n, m, graph=graph, tag=f"shard{i}")
        for i, (n, m) in enumerate(SIZES)
    ]
    containments = [minimal_views(query, views) for query in queries]
    return graph, frozen, sharded, definitions, queries, containments


def _single_pipeline(frozen, definitions, queries, containments):
    """Serial baseline: materialize on the snapshot, then MatchJoin."""
    views = ViewSet(definitions)
    views.materialize(frozen)
    answers = [
        match_join(query, containment, views)
        for query, containment in zip(queries, containments)
    ]
    return views, answers


def _sharded_pipeline(sharded, definitions, queries, containments, runner=None):
    """Shard-parallel materialization, then MatchJoin over the merged
    composite-id extensions (same fast path as the baseline)."""
    views = ViewSet(definitions)
    parallel_materialize(views, sharded, executor="serial", runner=runner)
    answers = [
        match_join(query, containment, views)
        for query, containment in zip(queries, containments)
    ]
    return views, answers


def test_single_snapshot_pipeline(benchmark, workload):
    _, frozen, _, definitions, queries, containments = workload
    once(benchmark, _single_pipeline, frozen, definitions, queries, containments)


def test_sharded_serial_pipeline(benchmark, workload):
    _, _, sharded, definitions, queries, containments = workload
    once(benchmark, _sharded_pipeline, sharded, definitions, queries, containments)


def test_sharded_process_pipeline(benchmark, workload):
    _, _, sharded, definitions, queries, containments = workload
    with ShardRunner(sharded, executor="process", workers=NUM_SHARDS) as runner:
        once(
            benchmark,
            _sharded_pipeline,
            sharded,
            definitions,
            queries,
            containments,
            runner,
        )


def test_sharded_results_match_single(workload):
    """Correctness at every scale: identical extensions and answers."""
    graph, frozen, sharded, definitions, queries, containments = workload
    single_views, single_answers = _single_pipeline(
        frozen, definitions, queries, containments
    )
    sharded_views, sharded_answers = _sharded_pipeline(
        sharded, definitions, queries, containments
    )
    assert sharded_views.snapshot_token == sharded.snapshot_token
    for name in single_views.names():
        assert (
            sharded_views.extension(name).edge_matches
            == single_views.extension(name).edge_matches
        )
    from repro.simulation import match

    for single, merged, query in zip(single_answers, sharded_answers, queries):
        assert single == merged
        assert single.edge_matches == match(query, graph).edge_matches


def _timed(fn, *args):
    started = perf_counter()
    result = fn(*args)
    return perf_counter() - started, result


def test_sharded_parallel_speedup(workload, scale):
    """Acceptance check: 4-shard process-pool materialization + batch
    matching >= 1.5x over the serial single-snapshot pipeline."""
    if (os.cpu_count() or 1) < NUM_SHARDS:
        pytest.skip(f"parallel speedup needs >= {NUM_SHARDS} CPU cores")
    if scale < 0.25:
        pytest.skip(
            "smoke scale: too little work to amortize pool coordination"
        )
    _, frozen, sharded, definitions, queries, containments = workload
    with ShardRunner(sharded, executor="process", workers=NUM_SHARDS) as runner:
        # Warm the pool (worker startup + snapshot shipping are one-off
        # serving costs, like freeze() in bench_compact_backend).
        _sharded_pipeline(sharded, definitions[:1], [], [], runner)
        sharded_time = min(
            _timed(
                _sharded_pipeline, sharded, definitions, queries, containments,
                runner,
            )[0]
            for _ in range(3)
        )
    single_time = min(
        _timed(_single_pipeline, frozen, definitions, queries, containments)[0]
        for _ in range(3)
    )
    assert single_time >= 1.5 * sharded_time, (
        f"single {single_time:.4f}s vs sharded {sharded_time:.4f}s "
        f"({single_time / sharded_time:.2f}x)"
    )
