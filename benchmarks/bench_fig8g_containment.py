"""Fig. 8(g): containment-checking time over DAG vs cyclic patterns.
Full series: python -m repro.bench.run_all --only fig8g."""

import pytest

from repro.core.containment import contains
from repro.datasets import generate_views, random_query

SIZES = [(6, 6), (8, 8), (8, 16), (10, 20)]
LABELS = tuple(f"l{i}" for i in range(10))


@pytest.fixture(scope="module")
def views():
    return generate_views(LABELS, 22, seed=17)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8g_contain_dag(benchmark, views, size):
    query = random_query(size[0], size[1], LABELS, seed=1, cyclic=False)
    benchmark(contains, query, views)


@pytest.mark.parametrize("size", SIZES, ids=str)
def test_fig8g_contain_cyclic(benchmark, views, size):
    query = random_query(size[0], size[1], LABELS, seed=1, cyclic=True)
    benchmark(contains, query, views)
