"""Delta-driven maintenance vs. rematerialize-everything.

Not a paper figure -- this benchmarks the maintenance pipeline PR: a
mixed insert/delete update stream flows through
:meth:`IncrementalViewSet.apply_delta` (incremental deletions,
affected-area insertions, batched accounting) and, as the strawman the
paper argues against, through a rematerialize-every-view-after-every-
update loop.  The workload is tuned so only a small fraction of updates
is view-relevant (most social/product-graph churn does not touch the
labels a cached view reads -- the regime Section I's deployment story
assumes): the stream mixes edges over the many unindexed filler labels
with occasional edges over the view labels.

``test_delta_pipeline_speedup`` asserts

* **correctness**: at every checkpoint (each batch boundary), the
  incrementally maintained extensions equal a from-scratch
  rematerialization of every view;
* **relevance mix**: at most 10% of the applied insertions were
  view-relevant (so the comparison is honest about the regime);
* **speedup**: the delta pipeline absorbs the whole stream at least
  3x faster than rematerialize-everything.

Timing excludes the correctness checks (they re-run the very
rematerialization being raced); the baseline loop performs exactly the
work a cache without incremental maintenance must do to stay fresh.
"""

import random
from time import perf_counter

import pytest

from repro.graph.digraph import DataGraph
from repro.views import Delta, ViewDefinition, materialize
from repro.views.maintenance import IncrementalViewSet

from common import once

#: Labels the views read vs. filler labels most churn lands on.
VIEW_LABELS = ("A", "B", "C")
FILLER_LABELS = tuple(f"f{i}" for i in range(24))
BATCH = 20


def _pattern(labels, edges):
    from repro.graph.pattern import Pattern

    pattern = Pattern()
    for name, label in labels.items():
        pattern.add_node(name, label)
    for source, target in edges:
        pattern.add_edge(source, target)
    return pattern


def _views():
    return [
        ViewDefinition("AB", _pattern({"a": "A", "b": "B"}, [("a", "b")])),
        ViewDefinition(
            "ABC",
            _pattern(
                {"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")]
            ),
        ),
    ]


def _workload(scale):
    rng = random.Random(42)
    # Floors keep the workload in the regime where asymptotics (not
    # constant factors) decide the race, even at CI smoke scales.
    num_nodes = max(1500, int(4000 * scale))
    num_edges = num_nodes * 3
    num_updates = max(160, int(400 * scale))
    graph = DataGraph()
    labels = VIEW_LABELS + FILLER_LABELS
    for node in range(num_nodes):
        # View labels cover a thin slice of the graph; filler dominates.
        graph.add_node(node, labels=labels[rng.randrange(len(labels))])
    added = 0
    while added < num_edges:
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b)
            added += 1
    # A mixed stream, mostly filler-to-filler churn.
    ops = []
    present = set(graph.edges())
    removable = sorted(present)
    rng.shuffle(removable)
    while len(ops) < num_updates:
        if removable and rng.random() < 0.5:
            ops.append(("delete", *removable.pop()))
        else:
            a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
            if a == b or (a, b) in present:
                continue
            present.add((a, b))
            ops.append(("insert", a, b))
    batches = [
        Delta(ops[start : start + BATCH])
        for start in range(0, len(ops), BATCH)
    ]
    return graph, _views(), batches


@pytest.fixture(scope="module")
def workload(scale):
    return _workload(scale)


def _run_delta_pipeline(graph, definitions, batches):
    tracked = IncrementalViewSet(definitions, graph)
    for batch in batches:
        tracked.apply_delta(batch)
        for definition in definitions:
            tracked.extension(definition.name)  # serve the cache
    return tracked


def _run_rematerialize_everything(graph, definitions, batches):
    mirror = graph.copy()
    extensions = {}
    for batch in batches:
        for op, source, target in batch:
            if op == "insert":
                if mirror.has_edge(source, target):
                    continue
                mirror.add_edge(source, target)
            else:
                if not mirror.has_edge(source, target):
                    continue
                mirror.remove_edge(source, target)
            # Staying fresh without incremental maintenance: every
            # update rematerializes every view.
            for definition in definitions:
                extensions[definition.name] = materialize(definition, mirror)
    return mirror, extensions


def test_delta_pipeline(benchmark, workload):
    graph, definitions, batches = workload
    once(benchmark, _run_delta_pipeline, graph, definitions, batches)


def test_rematerialize_everything(benchmark, workload):
    graph, definitions, batches = workload
    once(benchmark, _run_rematerialize_everything, graph, definitions, batches)


def test_delta_pipeline_speedup(workload):
    graph, definitions, batches = workload

    # Correctness first: replay with a per-batch equivalence check.
    tracked = IncrementalViewSet(definitions, graph)
    mirror = graph.copy()
    for batch in batches:
        tracked.apply_delta(batch)
        mirror.apply_delta(batch)
        for definition in definitions:
            fresh = materialize(definition, mirror)
            assert (
                tracked.extension(definition.name).edge_matches
                == fresh.edge_matches
            ), definition.name
    # Relevance mix: the regime the paper's deployment story assumes.
    stats = tracked.stats()
    insertions = sum(s.insertions for s in stats.values())
    relevant = sum(
        s.incremental_inserts + s.recomputes for s in stats.values()
    )
    assert insertions > 0
    assert relevant <= 0.10 * insertions, (
        f"workload drifted: {relevant}/{insertions} insertions were "
        "view-relevant (expected <= 10%)"
    )

    # Now the race, timed without any verification overhead.
    start = perf_counter()
    _run_delta_pipeline(graph, definitions, batches)
    delta_elapsed = perf_counter() - start
    start = perf_counter()
    _run_rematerialize_everything(graph, definitions, batches)
    baseline_elapsed = perf_counter() - start
    speedup = baseline_elapsed / delta_elapsed
    print(
        f"\ndelta pipeline: {delta_elapsed * 1e3:.1f} ms, "
        f"rematerialize-everything: {baseline_elapsed * 1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 3.0, (
        f"delta pipeline only {speedup:.2f}x faster than "
        "rematerialize-everything (expected >= 3x)"
    )
