"""Observability overhead: the metrics/trace layer must be ~free.

The instrumentation contract (see ``src/repro/obs/``): hot kernels
aggregate counts in local ints and write the registry once per call, and
spans materialize only under an active root span.  This module pins that
contract to measured behaviour on the ``bench_engine_batch`` workload:

* ``test_metrics_overhead_within_budget`` -- the same cold batch through
  an engine with a recording registry vs a disabled (no-op) one,
  interleaved min-of-N; the recording run must stay within 5%.
* ``test_untraced_span_is_passthrough`` -- with no root span active,
  ``span()`` must cost no more than a few hundred nanoseconds per call.

Plus plain benchmark entries for the registry primitives so instrument
regressions show up in ``--benchmark-only`` runs.
"""

from time import perf_counter

import pytest

from repro.bench import workloads
from repro.engine import QueryEngine
from repro.obs import trace
from repro.obs.metrics import DURATION_BUCKETS, MetricsRegistry

from common import once

SIZES = [(4, 4), (4, 6), (4, 8), (6, 6), (6, 9), (4, 4), (4, 6), (6, 6)]

#: The acceptance budget: recording metrics may cost at most this factor
#: over the no-op registry on a cold engine batch.
OVERHEAD_BUDGET = 1.05


@pytest.fixture(scope="module")
def workload(scale):
    graph, views = workloads.synthetic(max(500, int(3000 * scale)))
    queries = [
        workloads.pick_query(views, n, m, graph=graph, tag=f"obs{i}")
        for i, (n, m) in enumerate(SIZES)
    ]
    return graph, views, queries


def _run_cold(graph, views, queries, registry):
    engine = QueryEngine(
        views, graph=graph, selection="minimal", registry=registry
    )
    return engine.answer_batch(queries, executor="serial")


def _timed(graph, views, queries, registry):
    started = perf_counter()
    _run_cold(graph, views, queries, registry)
    return perf_counter() - started


def test_metrics_overhead_within_budget(workload):
    """Cold batch with a recording registry stays within 5% of no-op."""
    graph, views, queries = workload
    recording = MetricsRegistry(enabled=True)
    disabled = MetricsRegistry(enabled=False)
    # Warm everything timing-irrelevant once (imports, label index,
    # containment caches live per-engine so cold stays cold).
    _run_cold(graph, views, queries, disabled)
    _run_cold(graph, views, queries, recording)
    # Interleaved min-of-N: alternating runs see the same background
    # noise, and the min is the honest cost floor of each variant.
    on = off = float("inf")
    for _ in range(7):
        off = min(off, _timed(graph, views, queries, disabled))
        on = min(on, _timed(graph, views, queries, recording))
    assert on <= off * OVERHEAD_BUDGET, (
        f"metrics overhead {on / off - 1:.1%} exceeds "
        f"{OVERHEAD_BUDGET - 1:.0%} budget (on={on:.4f}s off={off:.4f}s)"
    )
    # The recording run actually recorded (the comparison is honest).
    snapshot = recording.snapshot()
    assert snapshot["counters"], "recording registry saw no metrics"


def test_untraced_span_is_passthrough():
    """``span()`` without a root span must be a no-op context manager."""
    spins = 200_000
    started = perf_counter()
    for _ in range(spins):
        with trace.span("noop"):
            pass
    per_call = (perf_counter() - started) / spins
    assert trace.current_span() is None
    assert per_call < 5e-6, f"untraced span() costs {per_call * 1e9:.0f}ns"


def test_bench_counter_inc(benchmark):
    reg = MetricsRegistry()
    counter = reg.counter("bench_counter_total", path="bench")

    def spin():
        for _ in range(10_000):
            counter.inc()

    once(benchmark, spin)


def test_bench_histogram_observe(benchmark):
    reg = MetricsRegistry()
    hist = reg.histogram("bench_seconds", DURATION_BUCKETS)

    def spin():
        for i in range(10_000):
            hist.observe(i * 1e-6)

    once(benchmark, spin)


def test_bench_noop_registry(benchmark):
    reg = MetricsRegistry(enabled=False)
    counter = reg.counter("bench_counter_total")
    hist = reg.histogram("bench_seconds", DURATION_BUCKETS)

    def spin():
        for i in range(10_000):
            counter.inc()
            hist.observe(i * 1e-6)

    once(benchmark, spin)


def test_bench_traced_batch(benchmark, workload):
    """A cold batch under a live root span (what serving pays)."""
    graph, views, queries = workload

    def run():
        with trace.root_span("bench.batch"):
            return _run_cold(graph, views, queries, MetricsRegistry())

    once(benchmark, run)
