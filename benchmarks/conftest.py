"""pytest-benchmark configuration.

Benchmarks default to a reduced scale so ``pytest benchmarks/bench_*.py
--benchmark-only`` finishes in minutes; set ``REPRO_BENCH_SCALE=1`` for
the full-size graphs, or use ``python -m repro.bench.run_all`` to
regenerate the complete Fig. 8 series (all x-axis points) in one pass.
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE
