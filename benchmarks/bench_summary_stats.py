"""Exp-1/Exp-4 narrative numbers: view-cache fractions, #views used,
containment-analysis costs on the real-dataset stand-ins (the paper's
"3 to 6 views ... no more than 4% of the size of the Youtube graph",
"less than 0.5 second" containment checking).

These run as assertions plus benchmarks so the narrative claims stay
pinned to measured behaviour.  On module teardown the measured numbers
are written to ``BENCH_summary.json`` (next to this file, or
``$REPRO_BENCH_SUMMARY_OUT``) -- one machine-readable artifact per run
for dashboards and cross-run comparison.
"""

import json
import os
import time
from pathlib import Path
from time import perf_counter

import pytest

from repro.bench import workloads
from repro.core.containment import contains
from repro.core.minimum import minimum_views

DATASETS = ["amazon", "citation", "youtube"]

SUMMARY_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_SUMMARY_OUT",
        Path(__file__).parent / "BENCH_summary.json",
    )
)


@pytest.fixture(scope="module")
def prepared(scale):
    out = {}
    for name in DATASETS:
        factory = getattr(workloads, name)
        graph, views = factory(scale)
        query = workloads.pick_query(
            views, 6, 9, graph=graph,
            require_dag=(name == "citation"), tag=name,
        )
        out[name] = (graph, views, query)
    return out


@pytest.fixture(scope="module")
def summary(scale):
    """Accumulates measured values; written out after the module runs."""
    data = {
        "version": 1,
        "scale": scale,
        "datasets": {name: {} for name in DATASETS},
    }
    yield data
    data["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    # Merge, don't overwrite: other bench modules (e.g. bench_planner)
    # contribute their own sections to the same artifact.
    existing = {}
    if SUMMARY_PATH.exists():
        try:
            existing = json.loads(SUMMARY_PATH.read_text())
        except ValueError:
            existing = {}
    existing.update(data)
    SUMMARY_PATH.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n"
    )


@pytest.mark.parametrize("name", DATASETS)
def test_summary_containment_cost(benchmark, prepared, summary, name):
    """Containment analysis stays far below the paper's 0.5s budget."""
    graph, views, query = prepared[name]
    started = perf_counter()
    contains(query, views)
    summary["datasets"][name]["containment_seconds"] = (
        perf_counter() - started
    )
    result = benchmark(contains, query, views)
    assert result.holds


@pytest.mark.parametrize("name", DATASETS)
def test_summary_views_used(benchmark, prepared, summary, name):
    """Minimum selection uses a handful of views (paper: 3-6)."""
    graph, views, query = prepared[name]
    result = benchmark(minimum_views, query, views)
    used = len(result.views_used())
    summary["datasets"][name]["views_used"] = used
    assert result.holds
    assert 1 <= used <= 8


@pytest.mark.parametrize("name", DATASETS)
def test_summary_extension_fraction(benchmark, prepared, summary, name):
    """Materialized extensions are a small fraction of |G|."""
    graph, views, query = prepared[name]

    def fraction():
        return views.extension_fraction(graph)

    value = benchmark(fraction)
    summary["datasets"][name].update(
        extension_fraction=value,
        graph_nodes=graph.num_nodes,
        graph_edges=graph.num_edges,
        views=views.cardinality,
    )
    assert 0 < value < 0.6
