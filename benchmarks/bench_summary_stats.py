"""Exp-1/Exp-4 narrative numbers: view-cache fractions, #views used,
containment-analysis costs on the real-dataset stand-ins (the paper's
"3 to 6 views ... no more than 4% of the size of the Youtube graph",
"less than 0.5 second" containment checking).

These run as assertions plus benchmarks so the narrative claims stay
pinned to measured behaviour.
"""

import pytest

from repro.bench import workloads
from repro.core.containment import contains
from repro.core.minimum import minimum_views

DATASETS = ["amazon", "citation", "youtube"]


@pytest.fixture(scope="module")
def prepared(scale):
    out = {}
    for name in DATASETS:
        factory = getattr(workloads, name)
        graph, views = factory(scale)
        query = workloads.pick_query(
            views, 6, 9, graph=graph,
            require_dag=(name == "citation"), tag=name,
        )
        out[name] = (graph, views, query)
    return out


@pytest.mark.parametrize("name", DATASETS)
def test_summary_containment_cost(benchmark, prepared, name):
    """Containment analysis stays far below the paper's 0.5s budget."""
    graph, views, query = prepared[name]
    result = benchmark(contains, query, views)
    assert result.holds


@pytest.mark.parametrize("name", DATASETS)
def test_summary_views_used(benchmark, prepared, name):
    """Minimum selection uses a handful of views (paper: 3-6)."""
    graph, views, query = prepared[name]
    result = benchmark(minimum_views, query, views)
    assert result.holds
    assert 1 <= len(result.views_used()) <= 8


@pytest.mark.parametrize("name", DATASETS)
def test_summary_extension_fraction(benchmark, prepared, name):
    """Materialized extensions are a small fraction of |G|."""
    graph, views, query = prepared[name]

    def fraction():
        return views.extension_fraction(graph)

    value = benchmark(fraction)
    assert 0 < value < 0.6
