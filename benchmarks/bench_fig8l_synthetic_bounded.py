"""Fig. 8(l): bounded-pattern scalability with |G| (synthetic, fe=3,
pattern (4,6)).  Full series: python -m repro.bench.run_all --only fig8l."""

import pytest

from repro.core.bounded.bmatchjoin import bounded_match_join
from repro.simulation import bounded_match

from common import once, prepare_synthetic

BASE_NODES = [3000, 6000, 10000]


@pytest.fixture(scope="module")
def prepared(scale):
    return {
        n: prepare_synthetic(max(500, int(n * scale)), (4, 6), bounded_k=3)
        for n in BASE_NODES
    }


@pytest.mark.parametrize("nodes", BASE_NODES, ids=str)
def test_fig8l_bmatch(benchmark, prepared, nodes):
    p = prepared[nodes]
    once(benchmark, bounded_match, p.query, p.graph)


@pytest.mark.parametrize("nodes", BASE_NODES, ids=str)
def test_fig8l_bmatchjoin_mnl(benchmark, prepared, nodes):
    p = prepared[nodes]
    once(benchmark, bounded_match_join, p.query, p.minimal, p.views)


@pytest.mark.parametrize("nodes", BASE_NODES, ids=str)
def test_fig8l_bmatchjoin_min(benchmark, prepared, nodes):
    p = prepared[nodes]
    once(benchmark, bounded_match_join, p.query, p.minimum, p.views)
