"""Legacy setuptools shim.

This environment has no ``wheel`` package, so PEP 660 editable installs
(``pip install -e .``) cannot build an editable wheel; this shim lets
``python setup.py develop`` (and pip's legacy fallback) work offline.
"""

from setuptools import setup

setup()
